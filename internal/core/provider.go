package core

import (
	"errors"

	"sfccover/internal/dominance"
	"sfccover/internal/subscription"
)

// Provider is the covering-detection abstraction: one interface over the
// single-lock Detector and the sharded engine (and, through them, anything
// else that can answer covering questions about a dynamic subscription
// set). Routers, brokers and services program against it so the choice of
// backing index — one detector, hash-sharded detectors, a curve-prefix
// sharded index — is a configuration knob, not a code path.
//
// Every implementation preserves the paper's asymmetry: a reported cover
// (or covered subscription) is always genuine; approximate modes may miss.
type Provider interface {
	// Add is the router arrival path: search for a cover of s, then insert
	// s either way. covered reports whether a cover was found, coveredBy
	// its id.
	Add(s *subscription.Subscription) (id uint64, covered bool, coveredBy uint64, err error)
	// Insert stores s unconditionally (no covering query) and returns its id.
	Insert(s *subscription.Subscription) (uint64, error)
	// Remove deletes a previously inserted subscription by id.
	Remove(id uint64) error
	// FindCover searches the held set for a subscription covering s.
	FindCover(s *subscription.Subscription) (id uint64, found bool, stats dominance.Stats, err error)
	// FindCovered searches the held set for a subscription that s covers —
	// the reverse question, used at unsubscription time.
	FindCovered(s *subscription.Subscription) (id uint64, found bool, stats dominance.Stats, err error)
	// Subscription resolves an id to its held subscription.
	Subscription(id uint64) (*subscription.Subscription, bool)
	// Len returns the number of held subscriptions.
	Len() int
	// Mode returns the configured detection mode.
	Mode() Mode
	// Schema returns the provider's attribute schema.
	Schema() *subscription.Schema
	// Stats returns a uniform snapshot of counters and occupancy.
	Stats() ProviderStats
	// Close releases resources (worker pools, goroutines). A closed
	// provider must not be used; Close is idempotent.
	Close()
}

// BatchQuerier is the optional batch capability of a Provider: backends
// that can amortize per-query dispatch (the engine's worker pool) expose
// it; CoverQueries uses it when present.
type BatchQuerier interface {
	// CoverQueryBatch runs FindCover for every subscription, returning
	// results aligned with the input slice.
	CoverQueryBatch(subs []*subscription.Subscription) []QueryResult
}

// AddResult is one BatchWriter.AddBatch outcome: the id assigned to the
// inserted subscription plus the result of the pre-insert covering query.
type AddResult struct {
	// ID is the id assigned to the inserted subscription (0 if the insert
	// failed).
	ID uint64
	QueryResult
}

// BatchWriter is the optional batch write capability of a Provider:
// backends that can amortize per-item costs — the engine's shard-grouped
// bulk loads, the remote provider's single-round-trip wire batches —
// expose it; AddAll/RemoveAll use it when present.
type BatchWriter interface {
	// AddBatch runs the arrival path (covering query + insert) for every
	// subscription. Results align with the input slice; per-item failures
	// occupy their slots. Batch items are mutually unordered: no item's
	// covering query is guaranteed to observe another batch item's insert.
	AddBatch(subs []*subscription.Subscription) []AddResult
	// RemoveBatch deletes the given ids. The returned slice aligns with
	// the input; entries are nil on success.
	RemoveBatch(ids []uint64) []error
}

// AddAll runs the arrival path for every subscription against p, through
// the batch capability when p has one and one Add at a time otherwise.
func AddAll(p Provider, subs []*subscription.Subscription) []AddResult {
	if bw, ok := p.(BatchWriter); ok {
		return bw.AddBatch(subs)
	}
	out := make([]AddResult, len(subs))
	for i, s := range subs {
		id, covered, coveredBy, err := p.Add(s)
		out[i] = AddResult{ID: id, QueryResult: QueryResult{Covered: covered, CoveredBy: coveredBy, Err: err}}
	}
	return out
}

// RemoveAll deletes every id against p, through the batch capability when
// p has one and one Remove at a time otherwise.
func RemoveAll(p Provider, ids []uint64) []error {
	if bw, ok := p.(BatchWriter); ok {
		return bw.RemoveBatch(ids)
	}
	out := make([]error, len(ids))
	for i, id := range ids {
		out[i] = p.Remove(id)
	}
	return out
}

// BulkInserter is the optional bulk-load capability of a Provider:
// Insert without the pre-insert covering query, batched under one lock
// acquisition (the Detector) or one lock per destination shard (the
// Engine). Recovery paths use it to rebuild an index from a persisted
// subscription dump without paying one covering query per entry.
type BulkInserter interface {
	// InsertBatch stores every subscription unconditionally and returns
	// the assigned ids, aligned with the input.
	InsertBatch(subs []*subscription.Subscription) ([]uint64, error)
}

// Persister is the optional durability capability of a Provider: backends
// whose subscription set survives a process restart (persist.DurableProvider
// locally, a remote daemon running with a data dir) expose it. The
// persisted form is the subscription set itself, not the derived index —
// recovery rebuilds the index from the dump via the bulk-load path.
type Persister interface {
	// Snapshot forces a point-in-time snapshot of the durable subscription
	// state and compacts the write-ahead log behind it. Answers are
	// unaffected; concurrent writes keep logging into fresh segments.
	Snapshot() error
}

// ErrSnapshotUnsupported reports a Snapshot call on a provider (or
// provider configuration) with no durable store behind it — a remote
// provider whose daemon runs without a data dir, typically.
var ErrSnapshotUnsupported = errors.New("core: provider has no durable store")

// ErrProviderClosed reports an operation issued after Close. Close itself
// stays idempotent; the typed error is how the batch paths reject use of a
// torn-down worker pool instead of panicking on a closed channel.
var ErrProviderClosed = errors.New("core: provider is closed")

// Enumerator is the optional enumeration capability of a Provider:
// backends that can list their held (id, subscription) pairs cheaply —
// the durable wrapper keeps a compact mirror for its snapshots — expose
// it. Routers use it after a restart to rebuild derived link state
// (forwarded-set id maps) from recovered providers.
type Enumerator interface {
	// Subscriptions returns every held subscription with its id, sorted by
	// id ascending.
	Subscriptions() []Drained
}

// Rebalancer is the optional load-rebalancing capability of a Provider:
// backends whose partition can skew under clustered workloads (the
// engine's curve-prefix slices) expose it to shift slice boundaries
// toward balance at runtime. Implementations must preserve answer
// semantics exactly: a rebalance may move where subscriptions are
// indexed, never what any query returns.
type Rebalancer interface {
	// Rebalance runs one bounded rebalance pass and reports what moved.
	// Providers whose current configuration cannot rebalance (hash
	// partitions are balanced by construction) return
	// ErrRebalanceUnsupported.
	Rebalance() (RebalanceResult, error)
}

// ErrRebalanceUnsupported reports a provider (or provider configuration)
// with no movable partition boundaries.
var ErrRebalanceUnsupported = errors.New("core: provider does not support rebalancing")

// RebalanceResult describes one rebalance pass.
type RebalanceResult struct {
	// Moves is the number of boundary moves performed.
	Moves int
	// Migrated is the number of index entries that crossed a boundary.
	Migrated int
	// SkewBefore and SkewAfter bracket the pass with the worst slice-
	// occupancy ratio across the provider's rebalanceable indexes
	// (primary and, when present, the mirror; min clamped to 1, like
	// ProviderStats.SkewRatio).
	SkewBefore, SkewAfter float64
}

// CoveredDrainer is the optional batch-drain capability of a Provider:
// backends that can collect and remove the full covered set of a
// subscription in one pass expose it. Routers prefer it at unsubscription
// time over the FindCovered/Subscription/Remove pop loop, which costs one
// full scan per covered member.
type CoveredDrainer interface {
	// DrainCovered removes and returns every held subscription covered by
	// s. The result order is unspecified.
	DrainCovered(s *subscription.Subscription) ([]Drained, error)
}

// Drained is one subscription removed by a DrainCovered call, with the id
// it was held under.
type Drained struct {
	ID  uint64
	Sub *subscription.Subscription
}

// QueryResult is one covering-query outcome, the per-item currency of the
// batch interfaces.
type QueryResult struct {
	// Covered reports whether a stored subscription covers the query.
	Covered bool
	// CoveredBy is the id of the covering subscription.
	CoveredBy uint64
	// Stats aggregates the search cost in the paper's cost units.
	Stats dominance.Stats
	// Err is the per-item failure, nil on success.
	Err error
}

// CoverQueries runs FindCover for every subscription against p, through
// the batch capability when p has one and one query at a time otherwise.
// Results align with the input slice.
func CoverQueries(p Provider, subs []*subscription.Subscription) []QueryResult {
	if bq, ok := p.(BatchQuerier); ok {
		return bq.CoverQueryBatch(subs)
	}
	out := make([]QueryResult, len(subs))
	for i, s := range subs {
		id, found, stats, err := p.FindCover(s)
		out[i] = QueryResult{Covered: found, CoveredBy: id, Stats: stats, Err: err}
	}
	return out
}

// ProviderStats is the uniform counter-and-occupancy snapshot every
// Provider serves: lifetime query totals plus the shard layout, including
// the max/min slice-occupancy ratio that makes curve-prefix skew
// observable before any rebalancing kicks in.
type ProviderStats struct {
	// Subscriptions is the number of currently held subscriptions.
	Subscriptions int
	// Queries, Hits, RunsProbed and CubesGenerated are the lifetime query
	// totals, in the cost units of the paper's analysis.
	Queries        int
	Hits           int
	RunsProbed     int
	CubesGenerated int
	// ShardSearches counts per-shard searches issued (equals Queries for a
	// single detector and for the shared-decomposition engine plan).
	ShardSearches int
	// DecompCacheHits and DecompCacheMisses are the decomposition cache's
	// lifetime counters, summed across the provider's SFC indexes (zeros
	// when the cache is disabled or the strategy has no SFC index).
	DecompCacheHits   uint64
	DecompCacheMisses uint64
	// Shards is the number of partitions (1 for a single detector).
	Shards int
	// ShardSizes is the per-shard subscription count.
	ShardSizes []int
	// MaxShardSize and MinShardSize are the extremes of ShardSizes.
	MaxShardSize int
	MinShardSize int
	// SkewRatio is MaxShardSize over MinShardSize with the denominator
	// clamped to 1, so an empty slice under a hot one reads as the hot
	// slice's absolute size. 1.0 means perfectly balanced.
	SkewRatio float64
	// Rebalances counts rebalance passes that moved at least one
	// boundary; BoundaryMoves and MigratedEntries sum the per-pass moves
	// and migrated index entries. All three stay zero on providers
	// without the Rebalancer capability.
	Rebalances      int
	BoundaryMoves   int
	MigratedEntries int
	// Snapshots counts point-in-time snapshots taken; WALRecords and
	// WALBytes sum the write-ahead-log records and bytes appended over the
	// provider's lifetime (compaction never decrements them). All three
	// stay zero on providers without the Persister capability.
	Snapshots  int
	WALRecords int
	WALBytes   int64
}

// SetShardSizes records the occupancy layout and derives Subscriptions,
// Shards, the extremes and SkewRatio from it.
func (ps *ProviderStats) SetShardSizes(sizes []int) {
	ps.Shards = len(sizes)
	ps.ShardSizes = sizes
	ps.Subscriptions = 0
	ps.MaxShardSize, ps.MinShardSize = 0, 0
	for i, n := range sizes {
		ps.Subscriptions += n
		if i == 0 || n > ps.MaxShardSize {
			ps.MaxShardSize = n
		}
		if i == 0 || n < ps.MinShardSize {
			ps.MinShardSize = n
		}
	}
	ps.SkewRatio = SkewOf(sizes)
}

// SkewOf is THE SkewRatio formula: max over min occupancy with the
// denominator clamped to 1 (an empty slice under a hot one reads as the
// hot slice's absolute size), 1 for an empty layout. Everything that
// reasons about skew — stats reporting, the engine's rebalance trigger
// and its hysteresis — derives the number from here, so operators and
// the rebalancer always observe the same value.
func SkewOf(sizes []int) float64 {
	if len(sizes) == 0 {
		return 1
	}
	max, min := sizes[0], sizes[0]
	for _, n := range sizes[1:] {
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if min < 1 {
		min = 1
	}
	return float64(max) / float64(min)
}

var _ Provider = (*Detector)(nil)
var _ CoveredDrainer = (*Detector)(nil)
var _ BulkInserter = (*Detector)(nil)

// Stats implements Provider for the single detector: one shard holding
// everything, so the occupancy fields are trivial and ShardSearches
// equals Queries.
func (d *Detector) Stats() ProviderStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	ps := ProviderStats{
		Queries:        d.totals.Queries,
		Hits:           d.totals.Hits,
		RunsProbed:     d.totals.RunsProbed,
		CubesGenerated: d.totals.CubesGenerated,
		ShardSearches:  d.totals.Queries,
	}
	ps.DecompCacheHits, ps.DecompCacheMisses = d.CacheStats()
	ps.SetShardSizes([]int{len(d.subs)})
	return ps
}

// Close implements Provider. A Detector holds no goroutines or external
// resources, so this is a no-op.
func (d *Detector) Close() {}
