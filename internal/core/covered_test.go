package core

import (
	"math/rand"
	"testing"

	"sfccover/internal/subscription"
)

func TestTrackCoveredValidation(t *testing.T) {
	schema := testSchema(t)
	if _, err := New(Config{Schema: schema, TrackCovered: true, Strategy: StrategyLinear}); err == nil {
		t.Error("TrackCovered with linear strategy must fail")
	}
	// Approximate FindCovered needs the mirror index.
	d := MustNew(Config{Schema: schema, Mode: ModeApprox, Epsilon: 0.3}) // not tracking
	if _, _, _, err := d.FindCovered(subscription.New(schema)); err == nil {
		t.Error("approximate FindCovered without TrackCovered must fail")
	}
	// Exact FindCovered works without it (direct scan).
	ex := MustNew(Config{Schema: schema, Mode: ModeExact})
	if _, _, _, err := ex.FindCovered(subscription.New(schema)); err != nil {
		t.Errorf("exact FindCovered should not need TrackCovered: %v", err)
	}
}

func TestFindCoveredExact(t *testing.T) {
	schema := testSchema(t)
	d := MustNew(Config{Schema: schema, Mode: ModeExact, TrackCovered: true})
	narrow := subscription.MustParse(schema, "x in [50,60] && y in [50,60]")
	narrowID, err := d.Insert(narrow)
	if err != nil {
		t.Fatal(err)
	}
	wide := subscription.MustParse(schema, "x in [10,200] && y in [10,200]")
	id, found, _, err := d.FindCovered(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !found || id != narrowID {
		t.Fatalf("FindCovered = (%d,%v), want (%d,true)", id, found, narrowID)
	}
	// The narrow subscription covers nothing that is stored.
	if _, found, _, err := d.FindCovered(narrow.Clone()); err != nil {
		t.Fatal(err)
	} else if !found {
		t.Fatal("a subscription covers its stored twin")
	}
	disjoint := subscription.MustParse(schema, "x in [210,220]")
	if _, found, _, _ := d.FindCovered(disjoint); found {
		t.Fatal("disjoint subscription covers nothing")
	}
	// Removal updates the mirror index too.
	if err := d.Remove(narrowID); err != nil {
		t.Fatal(err)
	}
	if _, found, _, _ := d.FindCovered(wide); found {
		t.Fatal("removed subscription still reported as covered")
	}
}

func TestFindCoveredAgreesWithOracle(t *testing.T) {
	// Exact FindCovered must agree with a brute-force scan; approximate
	// FindCovered must never report a subscription that is not genuinely
	// covered.
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(41))
	exact := MustNew(Config{Schema: schema, Mode: ModeExact, TrackCovered: true})
	approx := MustNew(Config{Schema: schema, Mode: ModeApprox, Epsilon: 0.3, TrackCovered: true, MaxCubes: 20000})

	var stored []*subscription.Subscription
	randSub := func() *subscription.Subscription {
		s := subscription.New(schema)
		for _, attr := range schema.Attrs() {
			lo := uint32(rng.Intn(200))
			hi := lo + uint32(rng.Intn(56))
			if err := s.SetRange(attr, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	for i := 0; i < 80; i++ {
		s := randSub()
		if _, err := exact.Insert(s); err != nil {
			t.Fatal(err)
		}
		if _, err := approx.Insert(s); err != nil {
			t.Fatal(err)
		}
		stored = append(stored, s)
	}
	for trial := 0; trial < 120; trial++ {
		q := randSub()
		oracle := false
		for _, s := range stored {
			if q.Covers(s) {
				oracle = true
				break
			}
		}
		_, exactFound, _, err := exact.FindCovered(q)
		if err != nil {
			t.Fatal(err)
		}
		if exactFound != oracle {
			t.Fatalf("exact FindCovered=%v, oracle=%v for %v", exactFound, oracle, q)
		}
		id, approxFound, _, err := approx.FindCovered(q)
		if err != nil {
			t.Fatal(err)
		}
		if approxFound {
			covered, ok := approx.Subscription(id)
			if !ok || !q.Covers(covered) {
				t.Fatalf("approx FindCovered returned a non-covered subscription")
			}
		}
	}
}

// TestDrainCovered pins the one-scan drain against the pop loop it
// replaces: both must remove exactly the covered set, and the drained
// subscriptions must round-trip (they feed resubscription).
func TestDrainCovered(t *testing.T) {
	schema := testSchema(t)
	build := func(track bool) *Detector {
		d := MustNew(Config{Schema: schema, Mode: ModeExact, TrackCovered: track})
		for _, expr := range []string{
			"x in [10,20] && y in [10,20]",
			"x in [30,40] && y in [30,40]",
			"x in [210,220] && y in [10,20]", // outside the wide cover
		} {
			if _, err := d.Insert(subscription.MustParse(schema, expr)); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	wide := subscription.MustParse(schema, "x <= 100 && y <= 100")
	for _, track := range []bool{false, true} {
		d := build(track)
		drained, err := d.DrainCovered(wide)
		if err != nil {
			t.Fatal(err)
		}
		if len(drained) != 2 {
			t.Fatalf("track=%v: drained %d, want 2", track, len(drained))
		}
		for _, it := range drained {
			if !wide.Covers(it.Sub) {
				t.Fatalf("track=%v: drained uncovered subscription %v", track, it.Sub)
			}
			if _, ok := d.Subscription(it.ID); ok {
				t.Fatalf("track=%v: drained id %d still held", track, it.ID)
			}
		}
		if d.Len() != 1 {
			t.Fatalf("track=%v: Len = %d after drain, want 1", track, d.Len())
		}
		// The survivor's indexes are intact: it is still findable/removable.
		if _, found, _, err := d.FindCover(subscription.MustParse(schema, "x in [212,215] && y in [12,15]")); err != nil || !found {
			t.Fatalf("track=%v: survivor not findable (found=%v err=%v)", track, found, err)
		}
		// A second drain finds nothing.
		if again, err := d.DrainCovered(wide); err != nil || len(again) != 0 {
			t.Fatalf("track=%v: second drain = (%d items, %v)", track, len(again), err)
		}
	}
	// Non-exact modes refuse: the covered set feeding resubscription must
	// be exact.
	approx := MustNew(Config{Schema: schema, Mode: ModeApprox, Epsilon: 0.3, TrackCovered: true})
	if _, err := approx.DrainCovered(wide); err == nil {
		t.Fatal("approximate DrainCovered must fail")
	}
	// Foreign schema is rejected.
	d := build(false)
	other := subscription.MustSchema(schema.Bits(), schema.Attrs()...)
	if _, err := d.DrainCovered(subscription.New(other)); err == nil {
		t.Fatal("foreign schema must fail")
	}
}

func TestFindCoveredModeOff(t *testing.T) {
	schema := testSchema(t)
	d := MustNew(Config{Schema: schema, Mode: ModeOff, TrackCovered: true})
	if _, err := d.Insert(subscription.MustParse(schema, "x == 5")); err != nil {
		t.Fatal(err)
	}
	if _, found, _, _ := d.FindCovered(subscription.New(schema)); found {
		t.Fatal("ModeOff must not find covered subscriptions")
	}
}

func TestConcurrentDetectorAccess(t *testing.T) {
	// The detector promises goroutine safety; exercise it under -race.
	schema := testSchema(t)
	d := MustNew(Config{Schema: schema, Mode: ModeApprox, Epsilon: 0.3, MaxCubes: 2000, TrackCovered: true})
	done := make(chan error, 4)
	worker := func(seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			s := subscription.New(schema)
			lo := uint32(rng.Intn(200))
			if err := s.SetRange("x", lo, lo+20); err != nil {
				done <- err
				return
			}
			id, _, _, err := d.Add(s)
			if err != nil {
				done <- err
				return
			}
			if _, _, _, err := d.FindCovered(s); err != nil {
				done <- err
				return
			}
			if i%3 == 0 {
				if err := d.Remove(id); err != nil {
					done <- err
					return
				}
			}
		}
		done <- nil
	}
	for g := 0; g < 4; g++ {
		go worker(int64(g))
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() == 0 {
		t.Fatal("expected surviving subscriptions")
	}
}
