// Package coretest holds the core.Provider conformance suite: one battery
// of behavioral checks that every provider implementation — the single
// Detector, the sharded Engine, the sfcd RemoteProvider — must pass
// identically, so that brokers and services can swap backends without
// re-auditing semantics. Implementation packages call RunProviderConformance
// from their own tests with a factory for a fresh, empty, exact-mode
// provider.
package coretest

import (
	"errors"
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/subscription"
)

// Schema returns a fresh schema of the shape the conformance suite
// expects: callers build it once and hand both the schema and a provider
// factory over it to RunProviderConformance.
func Schema() *subscription.Schema {
	return subscription.MustSchema(10, "volume", "price")
}

// RunProviderConformance runs the shared behavioral battery against
// providers produced by build. Each subtest gets its own fresh provider;
// build must return an empty provider in core.ModeExact on the given
// schema (exact mode makes every outcome deterministic, so the same
// assertions hold for any backing index). Providers are closed by the
// suite.
func RunProviderConformance(t *testing.T, schema *subscription.Schema, build func(t *testing.T) core.Provider) {
	t.Helper()
	fresh := func(t *testing.T) core.Provider {
		t.Helper()
		p := build(t)
		t.Cleanup(p.Close)
		if p.Mode() != core.ModeExact {
			t.Fatalf("conformance providers must run ModeExact, got %v", p.Mode())
		}
		if p.Len() != 0 {
			t.Fatalf("conformance providers must start empty, got Len %d", p.Len())
		}
		return p
	}
	// The three rectangles pin the semantics (wide ⊇ narrow; uncovered is
	// covered by nothing stored and covers nothing stored). Their bounds
	// hug the domain edges deliberately: a covering query's dominance
	// region has per-axis sides (lo, max−hi), and exhaustive SFC search
	// decomposes that region in full — mid-domain rectangles would cost
	// minutes under the SFC strategy for identical answers.
	wide := subscription.MustParse(schema, "volume <= 1020 && price <= 1020")
	narrow := subscription.MustParse(schema, "volume in [5,1000] && price in [5,1000]")
	uncovered := subscription.MustParse(schema, "volume in [7,1022] && price in [7,1022]")

	t.Run("schema", func(t *testing.T) {
		p := fresh(t)
		if p.Schema() != schema {
			t.Fatal("Schema() must return the configured schema")
		}
		foreign := subscription.New(subscription.MustSchema(8, "volume", "price"))
		if _, err := p.Insert(foreign); err == nil {
			t.Error("Insert with a foreign schema must fail")
		}
		if _, _, _, err := p.Add(foreign); err == nil {
			t.Error("Add with a foreign schema must fail")
		}
		if _, _, _, err := p.FindCover(foreign); err == nil {
			t.Error("FindCover with a foreign schema must fail")
		}
		if _, _, _, err := p.FindCovered(foreign); err == nil {
			t.Error("FindCovered with a foreign schema must fail")
		}
	})

	t.Run("insert-roundtrip", func(t *testing.T) {
		p := fresh(t)
		id, err := p.Insert(wide)
		if err != nil {
			t.Fatal(err)
		}
		if p.Len() != 1 {
			t.Fatalf("Len = %d after one insert", p.Len())
		}
		got, ok := p.Subscription(id)
		if !ok || !got.Equal(wide) {
			t.Fatalf("Subscription(%d) does not round-trip", id)
		}
		if _, ok := p.Subscription(id + 1000); ok {
			t.Error("unknown id must not resolve")
		}
	})

	t.Run("add-cover-semantics", func(t *testing.T) {
		p := fresh(t)
		wid, covered, _, err := p.Add(wide)
		if err != nil {
			t.Fatal(err)
		}
		if covered {
			t.Error("first arrival cannot be covered")
		}
		nid, covered, coveredBy, err := p.Add(narrow)
		if err != nil {
			t.Fatal(err)
		}
		if !covered || coveredBy != wid {
			t.Errorf("Add(narrow) = covered=%v by %d, want covered by %d", covered, coveredBy, wid)
		}
		if nid == wid {
			t.Error("Add must assign distinct ids")
		}
		if p.Len() != 2 {
			t.Errorf("Len = %d, want 2 (Add inserts either way)", p.Len())
		}
	})

	t.Run("find-cover", func(t *testing.T) {
		p := fresh(t)
		wid, err := p.Insert(wide)
		if err != nil {
			t.Fatal(err)
		}
		id, found, _, err := p.FindCover(narrow)
		if err != nil || !found || id != wid {
			t.Fatalf("FindCover(narrow) = (%d,%v,%v), want (%d,true,nil)", id, found, err, wid)
		}
		if _, found, _, err := p.FindCover(uncovered); err != nil || found {
			t.Fatalf("FindCover(uncovered) = (%v,%v), want a clean miss", found, err)
		}
	})

	t.Run("find-covered", func(t *testing.T) {
		p := fresh(t)
		nid, err := p.Insert(narrow)
		if err != nil {
			t.Fatal(err)
		}
		id, found, _, err := p.FindCovered(wide)
		if err != nil || !found || id != nid {
			t.Fatalf("FindCovered(wide) = (%d,%v,%v), want (%d,true,nil)", id, found, err, nid)
		}
		if _, found, _, err := p.FindCovered(uncovered); err != nil || found {
			t.Fatalf("FindCovered(uncovered) = (%v,%v), want a clean miss", found, err)
		}
	})

	t.Run("remove", func(t *testing.T) {
		p := fresh(t)
		id, err := p.Insert(wide)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Remove(id); err != nil {
			t.Fatal(err)
		}
		if p.Len() != 0 {
			t.Errorf("Len = %d after removal", p.Len())
		}
		if _, found, _, _ := p.FindCover(narrow); found {
			t.Error("removed subscription still covers")
		}
		if err := p.Remove(id); err == nil {
			t.Error("double remove must fail")
		}
	})

	t.Run("batch-queries", func(t *testing.T) {
		p := fresh(t)
		if _, err := p.Insert(wide); err != nil {
			t.Fatal(err)
		}
		res := core.CoverQueries(p, []*subscription.Subscription{narrow, uncovered})
		if len(res) != 2 {
			t.Fatalf("got %d results for 2 queries", len(res))
		}
		if res[0].Err != nil || !res[0].Covered {
			t.Errorf("batch query 0 = %+v, want covered", res[0])
		}
		if res[1].Err != nil || res[1].Covered {
			t.Errorf("batch query 1 = %+v, want uncovered", res[1])
		}
	})

	t.Run("stats", func(t *testing.T) {
		p := fresh(t)
		if _, err := p.Insert(wide); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := p.FindCover(narrow); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := p.FindCover(uncovered); err != nil {
			t.Fatal(err)
		}
		ps := p.Stats()
		if ps.Subscriptions != 1 {
			t.Errorf("Stats.Subscriptions = %d, want 1", ps.Subscriptions)
		}
		if ps.Queries < 2 || ps.Hits < 1 {
			t.Errorf("Stats totals = %d queries / %d hits, want >= 2 / >= 1", ps.Queries, ps.Hits)
		}
		if ps.Shards < 1 || len(ps.ShardSizes) != ps.Shards {
			t.Errorf("Stats layout = %d shards, %d sizes", ps.Shards, len(ps.ShardSizes))
		}
		total := 0
		for _, n := range ps.ShardSizes {
			total += n
		}
		if total != ps.Subscriptions {
			t.Errorf("ShardSizes sum %d != Subscriptions %d", total, ps.Subscriptions)
		}
	})

	t.Run("batch-writer", func(t *testing.T) {
		p := fresh(t)
		bw, ok := p.(core.BatchWriter)
		if !ok {
			t.Skip("provider has no BatchWriter capability")
		}
		first := bw.AddBatch([]*subscription.Subscription{wide})
		if len(first) != 1 || first[0].Err != nil || first[0].ID == 0 {
			t.Fatalf("AddBatch([wide]) = %+v", first)
		}
		// Batch items are mutually unordered, so the cover must come from
		// an EARLIER batch to be asserted.
		res := bw.AddBatch([]*subscription.Subscription{narrow, uncovered})
		if len(res) != 2 {
			t.Fatalf("got %d results for 2 adds", len(res))
		}
		if res[0].Err != nil || !res[0].Covered || res[0].CoveredBy != first[0].ID {
			t.Errorf("AddBatch narrow = %+v, want covered by %d", res[0], first[0].ID)
		}
		if res[1].Err != nil || res[1].Covered {
			t.Errorf("AddBatch uncovered = %+v, want a clean miss", res[1])
		}
		if p.Len() != 3 {
			t.Fatalf("Len = %d after batch adds, want 3", p.Len())
		}
		got, ok := p.Subscription(res[0].ID)
		if !ok || !got.Equal(narrow) {
			t.Fatalf("batch-assigned id %d does not round-trip", res[0].ID)
		}
		// Batch items are mutually unordered, so the failing id must be one
		// that can never succeed (a duplicate of a valid id would race it).
		bogus := first[0].ID + res[0].ID + res[1].ID + 1000
		errs := bw.RemoveBatch([]uint64{res[0].ID, bogus})
		if len(errs) != 2 || errs[0] != nil || errs[1] == nil {
			t.Fatalf("RemoveBatch = %v, want [nil, error]", errs)
		}
		if p.Len() != 2 {
			t.Fatalf("Len = %d after batch remove, want 2", p.Len())
		}
		// The helpers must route through the capability transparently.
		if out := core.AddAll(p, nil); len(out) != 0 {
			t.Fatalf("AddAll(nil) = %v", out)
		}
		if out := core.RemoveAll(p, []uint64{first[0].ID}); len(out) != 1 || out[0] != nil {
			t.Fatalf("RemoveAll = %v", out)
		}
	})

	t.Run("rebalancer", func(t *testing.T) {
		p := fresh(t)
		rb, ok := p.(core.Rebalancer)
		if !ok {
			t.Skip("provider has no Rebalancer capability")
		}
		wid, err := p.Insert(wide)
		if err != nil {
			t.Fatal(err)
		}
		// Whether this configuration can rebalance or not, answers must be
		// identical afterwards; unsupported configurations must say so.
		res, err := rb.Rebalance()
		if err != nil && !errors.Is(err, core.ErrRebalanceUnsupported) {
			t.Fatalf("Rebalance: %v", err)
		}
		if err == nil && res.SkewAfter > res.SkewBefore {
			t.Errorf("rebalance worsened skew: %+v", res)
		}
		id, found, _, err := p.FindCover(narrow)
		if err != nil || !found || id != wid {
			t.Fatalf("FindCover after rebalance = (%d,%v,%v), want (%d,true,nil)", id, found, err, wid)
		}
		if _, found, _, err := p.FindCover(uncovered); err != nil || found {
			t.Fatalf("FindCover(uncovered) after rebalance = (%v,%v), want a clean miss", found, err)
		}
	})

	t.Run("persister-snapshot", func(t *testing.T) {
		p := fresh(t)
		ps, ok := p.(core.Persister)
		if !ok {
			t.Skip("provider has no Persister capability")
		}
		wid, err := p.Insert(wide)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.Snapshot(); err != nil {
			if errors.Is(err, core.ErrSnapshotUnsupported) {
				t.Skip("provider's backend runs without a durable store")
			}
			t.Fatalf("Snapshot: %v", err)
		}
		// A snapshot is pure bookkeeping: answers must be identical after.
		id, found, _, err := p.FindCover(narrow)
		if err != nil || !found || id != wid {
			t.Fatalf("FindCover after snapshot = (%d,%v,%v), want (%d,true,nil)", id, found, err, wid)
		}
		if st := p.Stats(); st.Snapshots < 1 {
			t.Errorf("Stats.Snapshots = %d after an explicit snapshot", st.Snapshots)
		}
	})

	t.Run("close-idempotent", func(t *testing.T) {
		p := build(t)
		p.Close()
		p.Close()
	})
}

// RunPersistenceConformance exercises the durability contract shared by
// every provider that advertises core.Persister: open must return a
// provider backed by the same durable state each call (a fixed data dir,
// a daemon with a fixed -data-dir). The suite opens a provider,
// populates it, snapshots mid-stream, keeps writing, closes it, reopens
// through the same factory, and demands that the recovered provider
// answers identically — same durable sids included — then re-runs the
// mutation battery on the recovered instance.
//
// open is called at least twice; each returned provider is closed by the
// suite before the next is opened, so open owns any store restart a
// reopen needs (a local persist.Store must be closed and reopened; a
// daemon with a data dir may stay up or restart inside open).
func RunPersistenceConformance(t *testing.T, schema *subscription.Schema, open func(t *testing.T) core.Provider) {
	t.Helper()
	wide := subscription.MustParse(schema, "volume <= 1020 && price <= 1020")
	narrow := subscription.MustParse(schema, "volume in [5,1000] && price in [5,1000]")
	uncovered := subscription.MustParse(schema, "volume in [7,1022] && price in [7,1022]")
	// The probes are NOT stored, and each has exactly one stored answer
	// once the set is {wide, narrow}: edgeProbe sits inside wide but
	// outside narrow (unique cover), and midProbe covers narrow but not
	// wide (unique covered). Unique answers let the suite demand exact
	// ids; edge-hugging bounds keep exhaustive SFC search cheap.
	edgeProbe := subscription.MustParse(schema, "volume in [2,1010] && price in [2,1010]")
	midProbe := subscription.MustParse(schema, "volume in [4,1001] && price in [4,1001]")

	p := open(t)
	ps, ok := p.(core.Persister)
	if !ok {
		t.Fatal("persistence conformance needs a provider with the Persister capability")
	}
	if p.Mode() != core.ModeExact {
		t.Fatalf("persistence conformance providers must run ModeExact, got %v", p.Mode())
	}
	wid, err := p.Insert(wide)
	if err != nil {
		t.Fatal(err)
	}
	uid, err := p.Insert(uncovered)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Post-snapshot mutations land in the WAL and must replay on top.
	nid, err := p.Insert(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(uid); err != nil {
		t.Fatal(err)
	}
	p.Close()

	r := open(t)
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("recovered Len = %d, want 2", r.Len())
	}
	got, ok := r.Subscription(wid)
	if !ok || !got.Equal(wide) {
		t.Fatalf("recovered Subscription(%d) does not round-trip the pre-snapshot insert", wid)
	}
	got, ok = r.Subscription(nid)
	if !ok || !got.Equal(narrow) {
		t.Fatalf("recovered Subscription(%d) does not round-trip the post-snapshot insert", nid)
	}
	if _, ok := r.Subscription(uid); ok {
		t.Fatalf("removed id %d resurrected across recovery", uid)
	}
	id, found, _, err := r.FindCover(edgeProbe)
	if err != nil || !found || id != wid {
		t.Fatalf("recovered FindCover(edgeProbe) = (%d,%v,%v), want (%d,true,nil)", id, found, err, wid)
	}
	id, found, _, err = r.FindCovered(midProbe)
	if err != nil || !found || id != nid {
		t.Fatalf("recovered FindCovered(midProbe) = (%d,%v,%v), want (%d,true,nil)", id, found, err, nid)
	}
	// The recovered provider stays fully mutable: new ids never collide
	// with recovered ones, and removals of recovered ids stick.
	fresh, err := r.Insert(uncovered)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == wid || fresh == nid || fresh == uid {
		t.Fatalf("recovered provider reassigned id %d", fresh)
	}
	if err := r.Remove(wid); err != nil {
		t.Fatalf("removing a recovered id: %v", err)
	}
	if _, found, _, _ := r.FindCover(edgeProbe); found {
		t.Fatal("removed recovered cover still answers")
	}
}
