// Package core implements the paper's primary contribution: covering
// detection among content-based subscriptions, exact or ε-approximate,
// backed by the space-filling-curve point-dominance index of Section 5.
//
// A Detector holds a set of subscriptions. Given a new subscription s, it
// reports whether some held subscription covers s (N(cover) ⊇ N(s)), by
// transforming subscriptions to 2β-dimensional points (Edelsbrunner–
// Overmars) and running a point dominance query. In approximate mode the
// search inspects at least a (1−ε) fraction of the covering region's
// volume: it can miss a cover (routers then forward a redundant
// subscription — harmless), but it never invents one (suppression is
// always justified), which is exactly the asymmetry that makes approximate
// covering safe in publish/subscribe routing.
package core

import (
	"fmt"
	"sync"

	"sfccover/internal/dominance"
	"sfccover/internal/obs"
	"sfccover/internal/subscription"
)

// Mode selects how hard the detector searches for covers.
type Mode int

const (
	// ModeOff disables covering detection: FindCover always misses. This
	// is the flooding baseline.
	ModeOff Mode = iota
	// ModeExact searches exhaustively; a cover is found whenever one exists.
	ModeExact
	// ModeApprox runs the ε-approximate search of the paper.
	ModeApprox
)

// ParseMode inverts Mode.String: "off", "exact" and "approx" parse to the
// corresponding mode. Network clients use it to lift a daemon's negotiated
// mode string back into the typed world; CLIs use it for -mode flags.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "exact":
		return ModeExact, nil
	case "approx":
		return ModeApprox, nil
	default:
		return 0, fmt.Errorf("core: unknown mode %q (off, exact, approx)", s)
	}
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeExact:
		return "exact"
	case ModeApprox:
		return "approx"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Strategy selects the search backend for ModeExact.
type Strategy string

const (
	// StrategySFC uses the space-filling-curve index (exhaustive run
	// enumeration in exact mode; the paper's Section 5 algorithm in
	// approximate mode).
	StrategySFC Strategy = "sfc"
	// StrategyLinear scans all subscriptions (exact only).
	StrategyLinear Strategy = "linear"
	// StrategyKDTree uses a k-d tree with pruning (exact only).
	StrategyKDTree Strategy = "kdtree"
)

// Config parameterizes a Detector.
type Config struct {
	// Schema is the pub/sub attribute schema (required).
	Schema *subscription.Schema
	// Mode defaults to ModeExact.
	Mode Mode
	// Epsilon is the approximation parameter for ModeApprox (0 < ε < 1).
	Epsilon float64
	// Strategy defaults to StrategySFC. ModeApprox requires StrategySFC.
	Strategy Strategy
	// Curve, Array and Seed configure the SFC index; see dominance.Config.
	Curve string
	Array string
	Seed  int64
	// MaxCubes caps the probes a single SFC query may issue. Zero selects
	// DefaultMaxCubes; UnlimitedCubes (-1) removes the cap entirely.
	//
	// A cap is the pragmatic answer to the paper's aspect-ratio caveat:
	// subscriptions with equality or one-sided constraints yield query
	// regions with unit-length sides, whose greedy partitions degenerate
	// to astronomically many small cubes (the 2^(α(d−1)) factor in
	// Theorem 3.1). Capping turns those queries into coarser approximate
	// searches — covers can be missed, which only costs redundant
	// forwarding, never correctness.
	MaxCubes int
	// DecompCacheSize bounds the SFC index's decomposition cache in
	// entries: 0 selects the dominance package's default, negative
	// disables caching. Hits replay a memoized probe order bit-identical
	// to the uncached search. Ignored by non-SFC strategies.
	DecompCacheSize int
	// AdaptiveBudget derives each query's effective ε and cube cap from
	// observed query statistics instead of the fixed Epsilon/MaxCubes;
	// the configured values become the floor (ε) and ceiling (cap). See
	// dominance.Config.Adaptive. Ignored by non-SFC strategies.
	AdaptiveBudget bool
	// TrackCovered additionally maintains a mirrored index enabling
	// FindCovered — the reverse question "which stored subscription does s
	// cover?" — at the cost of a second index insert/delete per
	// subscription. Dominance in mirrored coordinates (max − x per axis)
	// is exactly reverse covering, so the same ε-approximate machinery
	// answers it. Routers use this at unsubscription time to find
	// subscriptions that the removed one had been covering.
	TrackCovered bool
}

const (
	// DefaultMaxCubes is the per-query probe budget used when Config
	// leaves MaxCubes zero (~1M probes, roughly hundreds of milliseconds
	// worst case).
	DefaultMaxCubes = 1 << 20
	// UnlimitedCubes disables the per-query probe budget.
	UnlimitedCubes = -1
)

// Totals aggregates query-cost counters across a detector's lifetime, in
// the cost units of the paper's analysis.
type Totals struct {
	// Queries is the number of FindCover searches issued.
	Queries int
	// Hits is how many of them found a cover.
	Hits int
	// RunsProbed sums the SFC range probes across all queries (zero for
	// linear/kd-tree strategies).
	RunsProbed int
	// CubesGenerated sums the standard cubes generated across all queries.
	CubesGenerated int
}

// Detector detects covering relationships among a dynamic set of
// subscriptions. It is safe for concurrent use.
type Detector struct {
	cfg Config

	mu       sync.Mutex
	sfc      *dominance.Index   // non-nil iff Strategy == StrategySFC
	mirror   *dominance.Index   // non-nil iff TrackCovered (mirrored points)
	exact    dominance.Searcher // backend for exact queries
	subs     map[uint64]*subscription.Subscription
	nextID   uint64
	totals   Totals
	maxCoord uint32
}

// New builds a Detector.
func New(cfg Config) (*Detector, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("core: config needs a schema")
	}
	if cfg.Strategy == "" {
		cfg.Strategy = StrategySFC
	}
	if cfg.Mode == ModeApprox {
		if cfg.Strategy != StrategySFC {
			return nil, fmt.Errorf("core: approximate mode requires the SFC strategy, got %q", cfg.Strategy)
		}
		if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
			return nil, fmt.Errorf("core: approximate mode needs 0 < epsilon < 1, got %v", cfg.Epsilon)
		}
	}
	switch {
	case cfg.MaxCubes == 0:
		cfg.MaxCubes = DefaultMaxCubes
	case cfg.MaxCubes == UnlimitedCubes:
		cfg.MaxCubes = 0 // dominance.Config uses 0 for "no cap"
	case cfg.MaxCubes < 0:
		return nil, fmt.Errorf("core: invalid MaxCubes %d", cfg.MaxCubes)
	}
	d := &Detector{
		cfg:      cfg,
		subs:     make(map[uint64]*subscription.Subscription),
		nextID:   1,
		maxCoord: cfg.Schema.MaxValue(),
	}
	dims, bits := cfg.Schema.Dims(), cfg.Schema.Bits()
	switch cfg.Strategy {
	case StrategySFC:
		idx, err := dominance.NewIndex(dominance.Config{
			Dims: dims, Bits: bits,
			Curve: cfg.Curve, Array: cfg.Array, Seed: cfg.Seed, MaxCubes: cfg.MaxCubes,
			CacheSize: cfg.DecompCacheSize, Adaptive: cfg.AdaptiveBudget,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		d.sfc = idx
		d.exact = idx
	case StrategyLinear:
		d.exact = dominance.NewLinear()
	case StrategyKDTree:
		d.exact = dominance.NewKDTree(dims)
	default:
		return nil, fmt.Errorf("core: unknown strategy %q", cfg.Strategy)
	}
	if cfg.TrackCovered {
		if cfg.Strategy != StrategySFC {
			return nil, fmt.Errorf("core: TrackCovered requires the SFC strategy, got %q", cfg.Strategy)
		}
		idx, err := dominance.NewIndex(dominance.Config{
			Dims: dims, Bits: bits,
			Curve: cfg.Curve, Array: cfg.Array, Seed: cfg.Seed + 1, MaxCubes: cfg.MaxCubes,
			CacheSize: cfg.DecompCacheSize, Adaptive: cfg.AdaptiveBudget,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		d.mirror = idx
	}
	return d, nil
}

// mirrorPoint reflects a transformed subscription point through the
// universe's center: dominance among mirrored points is reverse covering.
func (d *Detector) mirrorPoint(p []uint32) []uint32 {
	out := make([]uint32, len(p))
	for i, v := range p {
		out[i] = d.maxCoord - v
	}
	return out
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Detector {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Mode returns the configured detection mode.
func (d *Detector) Mode() Mode { return d.cfg.Mode }

// Schema returns the detector's attribute schema.
func (d *Detector) Schema() *subscription.Schema { return d.cfg.Schema }

// Config returns the detector's configuration with defaults resolved
// (Strategy and MaxCubes are normalized by New). Sharding layers use it to
// clone per-shard detectors from a validated template.
func (d *Detector) Config() Config { return d.cfg }

// Len returns the number of held subscriptions.
func (d *Detector) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.subs)
}

// Insert stores the subscription unconditionally and returns its id.
func (d *Detector) Insert(s *subscription.Subscription) (uint64, error) {
	if s.Schema() != d.cfg.Schema {
		return 0, fmt.Errorf("core: subscription schema differs from detector schema")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.subs[id] = s.Clone()
	d.exact.Insert(s.Point(), id)
	if d.mirror != nil {
		d.mirror.Insert(d.mirrorPoint(s.Point()), id)
	}
	return id, nil
}

// InsertBatch stores every subscription under a single lock acquisition —
// the bulk-load path sharding layers use to avoid one mutex round trip per
// item — and returns the assigned ids, aligned with the input.
func (d *Detector) InsertBatch(subs []*subscription.Subscription) ([]uint64, error) {
	// Validate and transform outside the lock; Point() is pure.
	points := make([][]uint32, len(subs))
	var mirrors [][]uint32
	for i, s := range subs {
		if s.Schema() != d.cfg.Schema {
			return nil, fmt.Errorf("core: subscription schema differs from detector schema")
		}
		points[i] = s.Point()
	}
	if d.mirror != nil {
		mirrors = make([][]uint32, len(subs))
		for i, p := range points {
			mirrors[i] = d.mirrorPoint(p)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]uint64, len(subs))
	for i, s := range subs {
		id := d.nextID
		d.nextID++
		d.subs[id] = s.Clone()
		ids[i] = id
	}
	insertAll(d.exact, points, ids)
	if d.mirror != nil {
		insertAll(d.mirror, mirrors, ids)
	}
	return ids, nil
}

// insertAll bulk-loads a point batch through the searcher's sorted
// bulk-build path when it has one (the SFC index), falling back to
// item-by-item inserts for the baselines.
func insertAll(s dominance.Searcher, ps [][]uint32, ids []uint64) {
	if bi, ok := s.(dominance.BatchInserter); ok {
		bi.InsertBatch(ps, ids)
		return
	}
	for i, p := range ps {
		s.Insert(p, ids[i])
	}
}

// Remove deletes a previously inserted subscription by id.
func (d *Detector) Remove(id uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.subs[id]
	if !ok {
		return fmt.Errorf("core: no subscription with id %d", id)
	}
	delete(d.subs, id)
	if !d.exact.Delete(s.Point(), id) {
		return fmt.Errorf("core: index out of sync for id %d", id)
	}
	if d.mirror != nil && !d.mirror.Delete(d.mirrorPoint(s.Point()), id) {
		return fmt.Errorf("core: mirror index out of sync for id %d", id)
	}
	return nil
}

// Subscription returns the held subscription with the given id.
func (d *Detector) Subscription(id uint64) (*subscription.Subscription, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.subs[id]
	if !ok {
		return nil, false
	}
	return s.Clone(), true
}

// FindCover searches the held set for a subscription covering s, per the
// configured mode. The returned stats are zero-valued for non-SFC
// strategies and for ModeOff.
func (d *Detector) FindCover(s *subscription.Subscription) (id uint64, found bool, stats dominance.Stats, err error) {
	return d.FindCoverTraced(s, nil)
}

// FindCoverTraced is FindCover with an optional trace record threaded
// into the index search, which then appends its stage timings and
// samples probe latencies. tr may be nil (the hot path).
func (d *Detector) FindCoverTraced(s *subscription.Subscription, tr *obs.QueryTrace) (id uint64, found bool, stats dominance.Stats, err error) {
	if s.Schema() != d.cfg.Schema {
		return 0, false, stats, fmt.Errorf("core: subscription schema differs from detector schema")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.cfg.Mode {
	case ModeOff:
		return 0, false, stats, nil
	case ModeApprox:
		id, found, stats, err = d.sfc.QueryTraced(s.Point(), d.cfg.Epsilon, tr)
	default: // ModeExact
		if d.sfc != nil {
			id, found, stats, err = d.sfc.QueryTraced(s.Point(), 0, tr)
		} else {
			id, found = d.exact.QueryDominating(s.Point())
		}
	}
	if err != nil {
		return 0, false, stats, err
	}
	d.totals.Queries++
	if found {
		d.totals.Hits++
	}
	d.totals.RunsProbed += stats.RunsProbed
	d.totals.CubesGenerated += stats.CubesGenerated
	return id, found, stats, nil
}

// FindCovered searches the held set for a subscription that s covers — the
// reverse of FindCover. In ModeExact it scans the held set directly (exact,
// O(n), always available). In ModeApprox it runs the ε-approximate search
// on a mirrored SFC index — dominance among center-reflected points is
// reverse covering — which requires Config.TrackCovered; the usual
// guarantee applies: a reported subscription is genuinely covered, misses
// are possible.
func (d *Detector) FindCovered(s *subscription.Subscription) (id uint64, found bool, stats dominance.Stats, err error) {
	return d.FindCoveredTraced(s, nil)
}

// FindCoveredTraced is FindCovered with an optional trace record; see
// FindCoverTraced. tr may be nil.
func (d *Detector) FindCoveredTraced(s *subscription.Subscription, tr *obs.QueryTrace) (id uint64, found bool, stats dominance.Stats, err error) {
	if s.Schema() != d.cfg.Schema {
		return 0, false, stats, fmt.Errorf("core: subscription schema differs from detector schema")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.cfg.Mode {
	case ModeOff:
		return 0, false, stats, nil
	case ModeExact:
		for candID, cand := range d.subs {
			if s.Covers(cand) {
				d.totals.Queries++
				d.totals.Hits++
				return candID, true, stats, nil
			}
		}
		d.totals.Queries++
		return 0, false, stats, nil
	}
	// ModeApprox.
	if d.mirror == nil {
		return 0, false, stats, fmt.Errorf("core: approximate FindCovered requires Config.TrackCovered")
	}
	id, found, stats, err = d.mirror.QueryTraced(d.mirrorPoint(s.Point()), d.cfg.Epsilon, tr)
	if err != nil {
		return 0, false, stats, err
	}
	d.totals.Queries++
	if found {
		d.totals.Hits++
	}
	d.totals.RunsProbed += stats.RunsProbed
	d.totals.CubesGenerated += stats.CubesGenerated
	return id, found, stats, nil
}

// DrainCovered removes and returns every held subscription that s covers,
// in one scan under one lock acquisition. It is the batch form of the
// FindCovered/Subscription/Remove pop loop routers run at unsubscription
// time: popping k covered subscriptions out of m held ones costs O(k·m)
// scans through repeated FindCovered calls, while DrainCovered collects
// the whole covered set in a single O(m) pass. It requires ModeExact —
// the covered set must be exact where it feeds resubscription, since a
// missed member would never be re-forwarded and events would be lost.
//
// The returned subscriptions are the detector's own (now orphaned) copies;
// callers may keep them without cloning.
func (d *Detector) DrainCovered(s *subscription.Subscription) ([]Drained, error) {
	if s.Schema() != d.cfg.Schema {
		return nil, fmt.Errorf("core: subscription schema differs from detector schema")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.Mode != ModeExact {
		return nil, fmt.Errorf("core: DrainCovered requires ModeExact, detector runs %v", d.cfg.Mode)
	}
	var out []Drained
	for id, cand := range d.subs {
		if s.Covers(cand) {
			out = append(out, Drained{ID: id, Sub: cand})
		}
	}
	for _, it := range out {
		delete(d.subs, it.ID)
		p := it.Sub.Point()
		if !d.exact.Delete(p, it.ID) {
			return nil, fmt.Errorf("core: index out of sync for id %d", it.ID)
		}
		if d.mirror != nil && !d.mirror.Delete(d.mirrorPoint(p), it.ID) {
			return nil, fmt.Errorf("core: mirror index out of sync for id %d", it.ID)
		}
	}
	d.totals.Queries++
	if len(out) > 0 {
		d.totals.Hits++
	}
	return out, nil
}

// Add is the router's arrival path: search for a cover of s and insert s
// either way. covered reports whether a cover was found, coveredBy its id.
func (d *Detector) Add(s *subscription.Subscription) (id uint64, covered bool, coveredBy uint64, err error) {
	coveredBy, covered, _, err = d.FindCover(s)
	if err != nil {
		return 0, false, 0, err
	}
	id, err = d.Insert(s)
	if err != nil {
		return 0, false, 0, err
	}
	return id, covered, coveredBy, nil
}

// CacheStats sums the decomposition-cache hit and miss counters across
// the detector's SFC indexes (primary and, when present, the mirror).
// Zeros for non-SFC strategies and disabled caches. The counters are
// atomics, so no detector lock is taken.
func (d *Detector) CacheStats() (hits, misses uint64) {
	if d.sfc != nil {
		hits, misses = d.sfc.CacheStats()
	}
	if d.mirror != nil {
		h, m := d.mirror.CacheStats()
		hits += h
		misses += m
	}
	return hits, misses
}

// Totals returns a snapshot of the aggregate query counters.
func (d *Detector) Totals() Totals {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.totals
}

// CoverDegree counts the stored subscriptions that cover s. ModeExact
// counts exactly (a direct scan); ModeApprox enumerates the searched
// (1−ε)-volume region of the SFC index, so the result is a guaranteed
// undercount with no false members; ModeOff reports zero.
func (d *Detector) CoverDegree(s *subscription.Subscription) (int, error) {
	if s.Schema() != d.cfg.Schema {
		return 0, fmt.Errorf("core: subscription schema differs from detector schema")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.cfg.Mode {
	case ModeOff:
		return 0, nil
	case ModeExact:
		count := 0
		for _, cand := range d.subs {
			if cand.Covers(s) {
				count++
			}
		}
		return count, nil
	}
	count, stats, err := d.sfc.CountDominating(s.Point(), d.cfg.Epsilon)
	if err != nil {
		return 0, err
	}
	d.totals.Queries++
	if count > 0 {
		d.totals.Hits++
	}
	d.totals.RunsProbed += stats.RunsProbed
	d.totals.CubesGenerated += stats.CubesGenerated
	return count, nil
}
