package core_test

import (
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/core/coretest"
)

// TestDetectorProviderConformance anchors the shared core.Provider
// battery on the reference implementation. Engine and the sfcd
// RemoteProvider run the identical suite from their own packages, which
// is what licenses brokers to treat the backend as a configuration knob.
func TestDetectorProviderConformance(t *testing.T) {
	schema := coretest.Schema()
	for _, strat := range []core.Strategy{core.StrategySFC, core.StrategyLinear} {
		t.Run(string(strat), func(t *testing.T) {
			coretest.RunProviderConformance(t, schema, func(t *testing.T) core.Provider {
				return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, Strategy: strat})
			})
		})
	}
}
