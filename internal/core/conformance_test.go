package core_test

import (
	"testing"

	"sfccover/internal/core"
	"sfccover/internal/core/coretest"
)

// TestDetectorProviderConformance anchors the shared core.Provider
// battery on the reference implementation. Engine and the sfcd
// RemoteProvider run the identical suite from their own packages, which
// is what licenses brokers to treat the backend as a configuration knob.
func TestDetectorProviderConformance(t *testing.T) {
	schema := coretest.Schema()
	for _, strat := range []core.Strategy{core.StrategySFC, core.StrategyLinear} {
		t.Run(string(strat), func(t *testing.T) {
			coretest.RunProviderConformance(t, schema, func(t *testing.T) core.Provider {
				return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, Strategy: strat})
			})
		})
	}
}

// TestDetectorConformancePerCurve runs the same battery once per curve
// family, so every curve backend — not just the default Z — answers the
// full Provider contract with the decomposition cache enabled.
func TestDetectorConformancePerCurve(t *testing.T) {
	schema := coretest.Schema()
	for _, curve := range []string{"z", "hilbert", "gray", "onion"} {
		t.Run(curve, func(t *testing.T) {
			coretest.RunProviderConformance(t, schema, func(t *testing.T) core.Provider {
				return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, Curve: curve})
			})
		})
	}
}

// TestDetectorConformanceCacheVariants re-runs the battery with the
// decomposition cache disabled and with adaptive budgets on, so the two
// knobs cannot drift from the Provider contract.
func TestDetectorConformanceCacheVariants(t *testing.T) {
	schema := coretest.Schema()
	t.Run("cache-off", func(t *testing.T) {
		coretest.RunProviderConformance(t, schema, func(t *testing.T) core.Provider {
			return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, DecompCacheSize: -1})
		})
	})
	t.Run("adaptive", func(t *testing.T) {
		coretest.RunProviderConformance(t, schema, func(t *testing.T) core.Provider {
			return core.MustNew(core.Config{Schema: schema, Mode: core.ModeExact, AdaptiveBudget: true})
		})
	})
}
