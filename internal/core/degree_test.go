package core

import (
	"math/rand"
	"testing"

	"sfccover/internal/subscription"
)

func TestCoverDegreeExactMatchesOracle(t *testing.T) {
	schema := testSchema(t)
	d := MustNew(Config{Schema: schema, Mode: ModeExact})
	rng := rand.New(rand.NewSource(7))
	var stored []*subscription.Subscription
	for i := 0; i < 60; i++ {
		s := subscription.New(schema)
		for _, attr := range schema.Attrs() {
			lo := uint32(rng.Intn(200))
			hi := lo + uint32(rng.Intn(56))
			if err := s.SetRange(attr, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.Insert(s); err != nil {
			t.Fatal(err)
		}
		stored = append(stored, s)
	}
	for trial := 0; trial < 100; trial++ {
		q := subscription.New(schema)
		lo := uint32(rng.Intn(150))
		if err := q.SetRange("x", lo, lo+20); err != nil {
			t.Fatal(err)
		}
		if err := q.SetRange("y", lo, lo+20); err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, s := range stored {
			if s.Covers(q) {
				want++
			}
		}
		got, err := d.CoverDegree(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("CoverDegree=%d, oracle=%d", got, want)
		}
	}
}

func TestCoverDegreeApproxNeverOvercounts(t *testing.T) {
	schema := testSchema(t)
	approx := MustNew(Config{Schema: schema, Mode: ModeApprox, Epsilon: 0.25, MaxCubes: 20000})
	exact := MustNew(Config{Schema: schema, Mode: ModeExact})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 60; i++ {
		s := subscription.New(schema)
		for _, attr := range schema.Attrs() {
			lo := uint32(rng.Intn(150))
			hi := lo + 40 + uint32(rng.Intn(60))
			if err := s.SetRange(attr, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := approx.Insert(s); err != nil {
			t.Fatal(err)
		}
		if _, err := exact.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 40; trial++ {
		q := subscription.New(schema)
		lo := uint32(30 + rng.Intn(100))
		if err := q.SetRange("x", lo, lo+25); err != nil {
			t.Fatal(err)
		}
		if err := q.SetRange("y", lo, lo+25); err != nil {
			t.Fatal(err)
		}
		approxN, err := approx.CoverDegree(q)
		if err != nil {
			t.Fatal(err)
		}
		exactN, err := exact.CoverDegree(q)
		if err != nil {
			t.Fatal(err)
		}
		if approxN > exactN {
			t.Fatalf("approx degree %d exceeds exact %d", approxN, exactN)
		}
	}
}

func TestCoverDegreeModeOffAndSchema(t *testing.T) {
	schema := testSchema(t)
	d := MustNew(Config{Schema: schema, Mode: ModeOff})
	if _, err := d.Insert(subscription.New(schema)); err != nil {
		t.Fatal(err)
	}
	n, err := d.CoverDegree(subscription.MustParse(schema, "x == 1"))
	if err != nil || n != 0 {
		t.Fatalf("ModeOff degree = %d, %v", n, err)
	}
	other := subscription.MustSchema(8, "x", "y")
	if _, err := d.CoverDegree(subscription.New(other)); err == nil {
		t.Error("foreign schema must fail")
	}
}
