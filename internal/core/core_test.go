package core

import (
	"math/rand"
	"testing"

	"sfccover/internal/subscription"
)

func testSchema(t *testing.T) *subscription.Schema {
	t.Helper()
	return subscription.MustSchema(8, "x", "y")
}

func TestNewValidation(t *testing.T) {
	schema := testSchema(t)
	if _, err := New(Config{}); err == nil {
		t.Error("missing schema must fail")
	}
	if _, err := New(Config{Schema: schema, Mode: ModeApprox}); err == nil {
		t.Error("approx without epsilon must fail")
	}
	if _, err := New(Config{Schema: schema, Mode: ModeApprox, Epsilon: 1.5}); err == nil {
		t.Error("epsilon out of range must fail")
	}
	if _, err := New(Config{Schema: schema, Mode: ModeApprox, Epsilon: 0.1, Strategy: StrategyLinear}); err == nil {
		t.Error("approx with linear strategy must fail")
	}
	if _, err := New(Config{Schema: schema, Strategy: "quadtree"}); err == nil {
		t.Error("unknown strategy must fail")
	}
	for _, strat := range []Strategy{StrategySFC, StrategyLinear, StrategyKDTree} {
		if _, err := New(Config{Schema: schema, Strategy: strat}); err != nil {
			t.Errorf("strategy %q: %v", strat, err)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeOff.String() != "off" || ModeExact.String() != "exact" || ModeApprox.String() != "approx" {
		t.Error("mode strings wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Error("unknown mode string wrong")
	}
}

func TestExactDetectsCovering(t *testing.T) {
	schema := testSchema(t)
	for _, strat := range []Strategy{StrategySFC, StrategyLinear, StrategyKDTree} {
		d := MustNew(Config{Schema: schema, Mode: ModeExact, Strategy: strat})
		wide := subscription.MustParse(schema, "x in [10,200] && y in [20,220]")
		wideID, covered, _, err := d.Add(wide)
		if err != nil {
			t.Fatal(err)
		}
		if covered {
			t.Fatalf("%s: first subscription cannot be covered", strat)
		}
		narrow := subscription.MustParse(schema, "x in [50,150] && y in [30,40]")
		_, covered, coveredBy, err := d.Add(narrow)
		if err != nil {
			t.Fatal(err)
		}
		if !covered || coveredBy != wideID {
			t.Fatalf("%s: narrow should be covered by wide (covered=%v by=%d)", strat, covered, coveredBy)
		}
		other := subscription.MustParse(schema, "x in [0,9]")
		if _, covered, _, _ := d.Add(other); covered {
			t.Fatalf("%s: disjoint subscription wrongly covered", strat)
		}
		if d.Len() != 3 {
			t.Fatalf("%s: Len=%d", strat, d.Len())
		}
	}
}

func TestModeOffNeverFinds(t *testing.T) {
	schema := testSchema(t)
	d := MustNew(Config{Schema: schema, Mode: ModeOff})
	wide := subscription.New(schema) // covers everything
	if _, err := d.Insert(wide); err != nil {
		t.Fatal(err)
	}
	narrow := subscription.MustParse(schema, "x == 5")
	if _, found, _, _ := d.FindCover(narrow); found {
		t.Error("ModeOff must never find covers")
	}
	if d.Totals().Queries != 0 {
		t.Error("ModeOff queries should not count")
	}
}

func TestApproxNeverFalselyClaims(t *testing.T) {
	// Approximate detection may miss covers but must never claim one that
	// is not real.
	schema := testSchema(t)
	rng := rand.New(rand.NewSource(7))
	d := MustNew(Config{Schema: schema, Mode: ModeApprox, Epsilon: 0.3, MaxCubes: 20000})
	oracle := MustNew(Config{Schema: schema, Mode: ModeExact, Strategy: StrategyLinear})

	randSub := func() *subscription.Subscription {
		s := subscription.New(schema)
		for _, attr := range schema.Attrs() {
			lo := uint32(rng.Intn(256))
			hi := lo + uint32(rng.Intn(int(256-lo)))
			if err := s.SetRange(attr, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}

	misses := 0
	for i := 0; i < 80; i++ {
		s := randSub()
		id, approxFound, _, err := d.FindCover(s)
		if err != nil {
			t.Fatal(err)
		}
		_, exactFound, _, err := oracle.FindCover(s)
		if err != nil {
			t.Fatal(err)
		}
		if approxFound {
			if !exactFound {
				t.Fatal("approx found a cover the exact oracle denies")
			}
			cover, ok := d.Subscription(id)
			if !ok || !cover.Covers(s) {
				t.Fatalf("claimed cover %d does not cover %v", id, s)
			}
		} else if exactFound {
			misses++ // allowed: approximation error
		}
		if _, err := d.Insert(s); err != nil {
			t.Fatal(err)
		}
		if _, err := oracle.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("approx missed %d covers out of 80 adds", misses)
}

func TestApproxRecallIsHigh(t *testing.T) {
	// With planted covers whose slack is generous relative to the
	// truncation cut (the paper's "well distributed" regime), approximate
	// detection should find the overwhelming majority. A single attribute
	// (d = 2 dominance dims) keeps each query to a few hundred probes.
	schema := subscription.MustSchema(10, "price")
	rng := rand.New(rand.NewSource(13))
	d := MustNew(Config{Schema: schema, Mode: ModeApprox, Epsilon: 0.1})

	type iv struct{ lo, hi uint32 }
	var children []iv
	for i := 0; i < 150; i++ {
		lo := uint32(300 + rng.Intn(400))
		child := iv{lo, lo + 50 + uint32(rng.Intn(100))}
		children = append(children, child)
		// Parent extends the child by a generous uniform slack per side.
		pLo := child.lo - uint32(50+rng.Intn(150))
		pHi := child.hi + uint32(50+rng.Intn(150))
		if pHi > schema.MaxValue() {
			pHi = schema.MaxValue()
		}
		parent := subscription.New(schema)
		if err := parent.SetRange("price", pLo, pHi); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Insert(parent); err != nil {
			t.Fatal(err)
		}
	}
	found := 0
	for _, c := range children {
		q := subscription.New(schema)
		if err := q.SetRange("price", c.lo, c.hi); err != nil {
			t.Fatal(err)
		}
		_, ok, _, err := d.FindCover(q)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			found++
		}
	}
	recall := float64(found) / float64(len(children))
	if recall < 0.85 {
		t.Fatalf("recall %v too low for eps=0.1 with generous-slack covers", recall)
	}
	t.Logf("recall = %.3f", recall)
}

func TestRemoveRestoresNonCovered(t *testing.T) {
	schema := testSchema(t)
	d := MustNew(Config{Schema: schema, Mode: ModeExact})
	wide := subscription.MustParse(schema, "x in [0,200]")
	wideID, err := d.Insert(wide)
	if err != nil {
		t.Fatal(err)
	}
	narrow := subscription.MustParse(schema, "x in [50,60]")
	if _, found, _, _ := d.FindCover(narrow); !found {
		t.Fatal("cover should be found before removal")
	}
	if err := d.Remove(wideID); err != nil {
		t.Fatal(err)
	}
	if _, found, _, _ := d.FindCover(narrow); found {
		t.Fatal("cover should be gone after removal")
	}
	if err := d.Remove(wideID); err == nil {
		t.Fatal("double remove must fail")
	}
	if d.Len() != 0 {
		t.Fatalf("Len=%d after removal", d.Len())
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	d := MustNew(Config{Schema: testSchema(t)})
	other := subscription.MustSchema(8, "x", "y")
	s := subscription.New(other)
	if _, err := d.Insert(s); err == nil {
		t.Error("insert with foreign schema must fail")
	}
	if _, _, _, err := d.FindCover(s); err == nil {
		t.Error("query with foreign schema must fail")
	}
}

func TestInsertIsolatesCallerMutation(t *testing.T) {
	schema := testSchema(t)
	d := MustNew(Config{Schema: schema})
	s := subscription.MustParse(schema, "x in [10,20]")
	id, err := d.Insert(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetRange("x", 0, 255); err != nil { // mutate caller's copy
		t.Fatal(err)
	}
	held, ok := d.Subscription(id)
	if !ok || held.Range(0).Lo != 10 || held.Range(0).Hi != 20 {
		t.Error("detector must hold an independent copy")
	}
}

func TestTotalsAccounting(t *testing.T) {
	schema := testSchema(t)
	d := MustNew(Config{Schema: schema, Mode: ModeApprox, Epsilon: 0.3})
	s := subscription.MustParse(schema, "x in [5,10]")
	if _, _, _, err := d.FindCover(s); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert(subscription.New(schema)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := d.FindCover(s); err != nil {
		t.Fatal(err)
	}
	tot := d.Totals()
	if tot.Queries != 2 {
		t.Errorf("Queries=%d, want 2", tot.Queries)
	}
	if tot.Hits != 1 {
		t.Errorf("Hits=%d, want 1 (second query hits the universal sub)", tot.Hits)
	}
	if tot.RunsProbed == 0 || tot.CubesGenerated == 0 {
		t.Error("cost counters should be positive")
	}
}

func TestSubscriptionLookup(t *testing.T) {
	schema := testSchema(t)
	d := MustNew(Config{Schema: schema})
	if _, ok := d.Subscription(99); ok {
		t.Error("lookup of unknown id should miss")
	}
	s := subscription.MustParse(schema, "y == 7")
	id, _ := d.Insert(s)
	got, ok := d.Subscription(id)
	if !ok || !got.Equal(s) {
		t.Error("lookup returned wrong subscription")
	}
}
