package core

import "sfccover/internal/obs"

// SetObserver attaches a latency observer to the detector's SFC indexes:
// run probes issued by its queries are sampled into the observer's
// "run_probe" histogram. It must be called before the detector serves
// concurrent traffic — the underlying index fields are read without
// synchronization on the probe path. Detectors without the SFC strategy
// (linear/kd-tree baselines) have no probes to meter; the call is then a
// no-op.
func (d *Detector) SetObserver(o *obs.Observer) {
	if d.sfc != nil {
		d.sfc.SetObserver(o)
	}
	if d.mirror != nil {
		d.mirror.SetObserver(o)
	}
}
