package core

import (
	"testing"

	"sfccover/internal/subscription"
)

// TestDetectorProviderStrategies pins that the search-strategy variants
// behave identically through the Provider surface; the cross-implementation
// battery lives in coretest and runs from conformance_test.go.
func TestDetectorProviderStrategies(t *testing.T) {
	schema := subscription.MustSchema(10, "volume", "price")
	// Edge-hugging bounds keep the SFC variant's exhaustive enumeration
	// small (the dominance region's sides are (lo, max−hi) per axis).
	wide := subscription.MustParse(schema, "volume <= 1020 && price <= 1020")
	narrow := subscription.MustParse(schema, "volume in [5,1000] && price in [5,1000]")
	for _, strat := range []Strategy{StrategySFC, StrategyLinear, StrategyKDTree} {
		t.Run(string(strat), func(t *testing.T) {
			var p Provider = MustNew(Config{Schema: schema, Mode: ModeExact, Strategy: strat})
			defer p.Close()
			wid, covered, _, err := p.Add(wide)
			if err != nil || covered {
				t.Fatalf("Add(wide) = covered=%v err=%v", covered, err)
			}
			id, found, _, err := p.FindCover(narrow)
			if err != nil || !found || id != wid {
				t.Fatalf("FindCover = (%d,%v,%v), want (%d,true,nil)", id, found, err, wid)
			}
			if id, found, _, err := p.FindCovered(wide.Clone()); err != nil || !found || id != wid {
				t.Fatalf("FindCovered = (%d,%v,%v), want stored twin", id, found, err)
			}
			if err := p.Remove(wid); err != nil {
				t.Fatal(err)
			}
			if p.Len() != 0 {
				t.Fatalf("Len = %d after removal", p.Len())
			}
		})
	}
}

func TestProviderStatsSetShardSizes(t *testing.T) {
	cases := []struct {
		sizes    []int
		max, min int
		subs     int
		skew     float64
	}{
		{[]int{5}, 5, 5, 5, 1},
		{[]int{4, 4, 4}, 4, 4, 12, 1},
		{[]int{8, 2}, 8, 2, 10, 4},
		{[]int{6, 0}, 6, 0, 6, 6}, // empty slice: denominator clamps to 1
		{[]int{0, 0}, 0, 0, 0, 0},
	}
	for _, tc := range cases {
		var ps ProviderStats
		ps.SetShardSizes(tc.sizes)
		if ps.Shards != len(tc.sizes) {
			t.Errorf("%v: Shards = %d", tc.sizes, ps.Shards)
		}
		if ps.Subscriptions != tc.subs {
			t.Errorf("%v: Subscriptions = %d, want %d", tc.sizes, ps.Subscriptions, tc.subs)
		}
		if ps.MaxShardSize != tc.max || ps.MinShardSize != tc.min {
			t.Errorf("%v: max/min = %d/%d, want %d/%d", tc.sizes, ps.MaxShardSize, ps.MinShardSize, tc.max, tc.min)
		}
		if ps.SkewRatio != tc.skew {
			t.Errorf("%v: SkewRatio = %v, want %v", tc.sizes, ps.SkewRatio, tc.skew)
		}
	}
}

func TestDetectorStats(t *testing.T) {
	schema := subscription.MustSchema(8, "a", "b")
	d := MustNew(Config{Schema: schema, Mode: ModeExact, Strategy: StrategyLinear})
	wide := subscription.MustParse(schema, "a <= 200")
	if _, err := d.Insert(wide); err != nil {
		t.Fatal(err)
	}
	narrow := subscription.MustParse(schema, "a in [10,20]")
	if _, found, _, err := d.FindCover(narrow); err != nil || !found {
		t.Fatalf("FindCover = (%v, %v)", found, err)
	}
	ps := d.Stats()
	if ps.Subscriptions != 1 || ps.Shards != 1 {
		t.Fatalf("Stats occupancy = %d subs / %d shards", ps.Subscriptions, ps.Shards)
	}
	if ps.Queries != 1 || ps.Hits != 1 || ps.ShardSearches != 1 {
		t.Fatalf("Stats totals = %+v", ps)
	}
	if ps.SkewRatio != 1 {
		t.Fatalf("single shard SkewRatio = %v", ps.SkewRatio)
	}
	d.Close() // no-op, must not disturb the detector
	if d.Len() != 1 {
		t.Fatal("Close must leave the detector usable")
	}
}

func TestCoverQueriesFallback(t *testing.T) {
	// A Detector has no batch capability, so CoverQueries must fall back
	// to per-item FindCover with identical outcomes.
	schema := subscription.MustSchema(8, "a", "b")
	d := MustNew(Config{Schema: schema, Mode: ModeExact, Strategy: StrategyLinear})
	if _, err := d.Insert(subscription.MustParse(schema, "a <= 100 && b <= 100")); err != nil {
		t.Fatal(err)
	}
	queries := []*subscription.Subscription{
		subscription.MustParse(schema, "a in [5,10] && b in [5,10]"), // covered
		subscription.MustParse(schema, "a >= 200"),                   // not covered
	}
	res := CoverQueries(d, queries)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Err != nil || !res[0].Covered {
		t.Fatalf("query 0 = %+v, want covered", res[0])
	}
	if res[1].Err != nil || res[1].Covered {
		t.Fatalf("query 1 = %+v, want uncovered", res[1])
	}
}

func TestDetectorInsertBatch(t *testing.T) {
	schema := subscription.MustSchema(8, "a", "b")
	build := func(track bool) *Detector {
		return MustNew(Config{
			Schema: schema, Mode: ModeApprox, Epsilon: 0.3, MaxCubes: 2000,
			TrackCovered: track,
		})
	}
	subs := []*subscription.Subscription{
		subscription.MustParse(schema, "a <= 100 && b <= 100"),
		subscription.MustParse(schema, "a in [5,10]"),
		subscription.MustParse(schema, "b >= 50"),
	}
	for _, track := range []bool{false, true} {
		d := build(track)
		ids, err := d.InsertBatch(subs)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(subs) || d.Len() != len(subs) {
			t.Fatalf("track=%v: %d ids, Len %d", track, len(ids), d.Len())
		}
		for i, id := range ids {
			got, ok := d.Subscription(id)
			if !ok || !got.Equal(subs[i]) {
				t.Fatalf("track=%v: id %d does not round-trip", track, id)
			}
		}
		// The batch must land in the indexes: remove everything cleanly.
		for _, id := range ids {
			if err := d.Remove(id); err != nil {
				t.Fatalf("track=%v: remove: %v", track, err)
			}
		}
	}
	// Schema mismatch anywhere in the batch fails it atomically.
	d := build(false)
	other := subscription.MustSchema(8, "a", "b")
	if _, err := d.InsertBatch([]*subscription.Subscription{subscription.New(other)}); err == nil {
		t.Fatal("foreign schema must fail")
	}
	if d.Len() != 0 {
		t.Fatal("failed batch must not insert")
	}
}
