package sfc

import (
	"math/rand"
	"testing"

	"sfccover/internal/bits"
)

// TestChildrenPartitionParentRange verifies, for every curve, that the key
// ranges of a standard cube's 2^d children exactly partition the parent's
// key range — the recursive structure Fact 2.1 rests on.
func TestChildrenPartitionParentRange(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	shapes := []struct{ d, k int }{{2, 8}, {3, 6}, {4, 5}}
	for _, sh := range shapes {
		for _, c := range allCurves(t, sh.d, sh.k) {
			for trial := 0; trial < 50; trial++ {
				// Pick a random standard cube at a random level >= 1.
				lvl := 1 + rng.Intn(sh.k)
				side := uint64(1) << uint(lvl)
				corner := make([]uint32, sh.d)
				for i := range corner {
					cells := uint64(1) << uint(sh.k)
					corner[i] = uint32(uint64(rng.Int63n(int64(cells/side))) * side)
				}
				parent := CubeRange(c, corner, side)

				// Collect child ranges.
				half := side / 2
				var childRanges []KeyRange
				for mask := 0; mask < 1<<uint(sh.d); mask++ {
					child := make([]uint32, sh.d)
					for i := range child {
						child[i] = corner[i]
						if mask>>uint(i)&1 == 1 {
							child[i] = uint32(uint64(corner[i]) + half)
						}
					}
					childRanges = append(childRanges, CubeRange(c, child, half))
				}
				merged := MergeRanges(childRanges)
				if len(merged) != 1 {
					t.Fatalf("%s d=%d: children do not merge into one range (%d)", c.Name(), sh.d, len(merged))
				}
				if merged[0].Lo.Cmp(parent.Lo) != 0 || merged[0].Hi.Cmp(parent.Hi) != 0 {
					t.Fatalf("%s d=%d: children range %v != parent %v", c.Name(), sh.d, merged[0], parent)
				}
				// Children must be pairwise disjoint.
				for i := range childRanges {
					for j := i + 1; j < len(childRanges); j++ {
						a, b := childRanges[i], childRanges[j]
						if a.Contains(b.Lo) || b.Contains(a.Lo) {
							t.Fatalf("%s: child ranges overlap", c.Name())
						}
					}
				}
			}
		}
	}
}

// TestFullUniverseCubeRange checks the degenerate top cube: its range must
// span the whole key space for every curve.
func TestFullUniverseCubeRange(t *testing.T) {
	for _, c := range allCurves(t, 3, 4) {
		r := CubeRange(c, []uint32{0, 0, 0}, 16)
		if !r.Lo.IsZero() {
			t.Fatalf("%s: universe range starts at %v", c.Name(), r.Lo)
		}
		want := bits.LowMask(12) // 3*4 bits of ones
		if r.Hi.Cmp(want) != 0 {
			t.Fatalf("%s: universe range ends at %v, want %v", c.Name(), r.Hi, want)
		}
	}
}

// TestKeyOrderIsTotalAndStable spot-checks that curve keys order cells
// identically across repeated computation (pure functions).
func TestKeyOrderIsTotalAndStable(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, c := range allCurves(t, 5, 12) {
		for trial := 0; trial < 200; trial++ {
			cell := make([]uint32, 5)
			for i := range cell {
				cell[i] = uint32(rng.Intn(1 << 12))
			}
			k1 := c.Key(cell)
			k2 := c.Key(cell)
			if k1.Cmp(k2) != 0 {
				t.Fatalf("%s: Key not deterministic", c.Name())
			}
		}
	}
}
