package sfc

import (
	"math/rand"
	"testing"

	"sfccover/internal/bits"
)

// allCurves builds one of each curve for a universe, failing the test on error.
func allCurves(t *testing.T, d, k int) []Curve {
	t.Helper()
	cfg := Config{Dims: d, Bits: k}
	out := make([]Curve, 0, 4)
	for _, name := range Names() {
		if name == "onion" && d > OnionMaxDims {
			continue
		}
		c, err := New(name, cfg)
		if err != nil {
			t.Fatalf("New(%q,%v): %v", name, cfg, err)
		}
		out = append(out, c)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Dims: 0, Bits: 4},
		{Dims: 2, Bits: 0},
		{Dims: 2, Bits: 33},
		{Dims: 17, Bits: 32}, // 544 bits > 512
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", cfg)
		}
	}
	good := []Config{{Dims: 1, Bits: 1}, {Dims: 16, Bits: 32}, {Dims: 8, Bits: 20}}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", cfg, err)
		}
	}
}

func TestNewUnknownCurve(t *testing.T) {
	if _, err := New("peano", Config{Dims: 2, Bits: 4}); err == nil {
		t.Fatal("unknown curve name must fail")
	}
}

// enumerateCells yields every cell of a small universe.
func enumerateCells(d, k int) [][]uint32 {
	n := 1 << uint(k)
	total := 1
	for i := 0; i < d; i++ {
		total *= n
	}
	cells := make([][]uint32, 0, total)
	cell := make([]uint32, d)
	var rec func(dim int)
	rec = func(dim int) {
		if dim == d {
			cells = append(cells, append([]uint32(nil), cell...))
			return
		}
		for v := 0; v < n; v++ {
			cell[dim] = uint32(v)
			rec(dim + 1)
		}
	}
	rec(0)
	return cells
}

func TestCurvesAreBijections(t *testing.T) {
	shapes := []struct{ d, k int }{{1, 5}, {2, 4}, {3, 3}, {4, 2}}
	for _, sh := range shapes {
		for _, c := range allCurves(t, sh.d, sh.k) {
			seen := make(map[bits.Key][]uint32)
			for _, cell := range enumerateCells(sh.d, sh.k) {
				key := c.Key(cell)
				if prev, dup := seen[key]; dup {
					t.Fatalf("%s d=%d k=%d: key collision %v for %v and %v",
						c.Name(), sh.d, sh.k, key, prev, cell)
				}
				seen[key] = cell
				back := c.Cell(key)
				for i := range cell {
					if back[i] != cell[i] {
						t.Fatalf("%s d=%d k=%d: roundtrip %v -> %v", c.Name(), sh.d, sh.k, cell, back)
					}
				}
				// Key must be < 2^(d*k).
				if key.Len() > sh.d*sh.k {
					t.Fatalf("%s: key %v wider than %d bits", c.Name(), key, sh.d*sh.k)
				}
			}
		}
	}
}

func TestCurveRoundTripRandomLargeUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := []struct{ d, k int }{{4, 16}, {8, 20}, {16, 32}, {6, 10}}
	for _, sh := range shapes {
		for _, c := range allCurvesB(t, sh.d, sh.k) {
			for trial := 0; trial < 100; trial++ {
				cell := make([]uint32, sh.d)
				for i := range cell {
					cell[i] = uint32(rng.Int63()) & (1<<uint(sh.k) - 1)
				}
				back := c.Cell(c.Key(cell))
				for i := range cell {
					if back[i] != cell[i] {
						t.Fatalf("%s d=%d k=%d roundtrip failed: %v -> %v", c.Name(), sh.d, sh.k, cell, back)
					}
				}
			}
		}
	}
}

// allCurvesB is allCurves with a *testing.T-free signature mismatch avoided.
func allCurvesB(t *testing.T, d, k int) []Curve { return allCurves(t, d, k) }

func TestHilbertAdjacency(t *testing.T) {
	// Defining property of the Hilbert curve: consecutive keys map to cells
	// at L1 distance exactly 1.
	shapes := []struct{ d, k int }{{2, 4}, {3, 3}, {4, 2}}
	for _, sh := range shapes {
		h := MustHilbert(sh.d, sh.k)
		total := 1 << uint(sh.d*sh.k)
		prev := h.Cell(bits.KeyFromUint64(0))
		for v := 1; v < total; v++ {
			cur := h.Cell(bits.KeyFromUint64(uint64(v)))
			dist := 0
			for i := range cur {
				di := int(cur[i]) - int(prev[i])
				if di < 0 {
					di = -di
				}
				dist += di
			}
			if dist != 1 {
				t.Fatalf("hilbert d=%d k=%d: keys %d,%d map to cells %v,%v at L1 distance %d",
					sh.d, sh.k, v-1, v, prev, cur, dist)
			}
			prev = cur
		}
	}
}

func TestGrayCurveAdjacencyInterleavedBits(t *testing.T) {
	// Defining property of the Gray-code curve: consecutive keys map to
	// cells whose *interleaved* coordinates differ in exactly one bit.
	g := MustGray(2, 4)
	total := 1 << 8
	prev := bits.Interleave(g.Cell(bits.KeyFromUint64(0)), 4)
	for v := 1; v < total; v++ {
		cur := bits.Interleave(g.Cell(bits.KeyFromUint64(uint64(v))), 4)
		diff := cur.Xor(prev)
		ones := 0
		for p := 0; p < 8; p++ {
			ones += int(diff.Bit(p))
		}
		if ones != 1 {
			t.Fatalf("gray: keys %d,%d differ in %d interleaved bits", v-1, v, ones)
		}
		prev = cur
	}
}

func TestZCurveKeyMatchesInterleaving(t *testing.T) {
	z := MustZ(2, 3)
	key := z.Key([]uint32{3, 5})
	if got, _ := key.Uint64(); got != 27 {
		t.Fatalf("Z key of (3,5) = %d, want 27 (paper example)", got)
	}
}

func TestCubeRangeCoversExactlyCubeCells(t *testing.T) {
	// Fact 2.1: a standard cube is a single run. For every curve and every
	// standard cube of a small universe, the key range must contain exactly
	// the cube's cells.
	shapes := []struct{ d, k int }{{2, 3}, {3, 2}}
	for _, sh := range shapes {
		for _, c := range allCurves(t, sh.d, sh.k) {
			n := 1 << uint(sh.k)
			for lvl := 0; lvl <= sh.k; lvl++ {
				side := uint32(1) << uint(sh.k-lvl)
				// Iterate over all cube corners at this level.
				var corners [][]uint32
				corner := make([]uint32, sh.d)
				var rec func(dim int)
				rec = func(dim int) {
					if dim == sh.d {
						corners = append(corners, append([]uint32(nil), corner...))
						return
					}
					for v := uint32(0); v < uint32(n); v += side {
						corner[dim] = v
						rec(dim + 1)
					}
				}
				rec(0)
				for _, cr := range corners {
					rng := CubeRange(c, cr, uint64(side))
					want := 1
					for i := 0; i < sh.d; i++ {
						want *= int(side)
					}
					got := 0
					for _, cell := range enumerateCells(sh.d, sh.k) {
						inCube := true
						for i := range cell {
							if cell[i] < cr[i] || cell[i] >= cr[i]+side {
								inCube = false
								break
							}
						}
						inRange := rng.Contains(c.Key(cell))
						if inCube != inRange {
							t.Fatalf("%s d=%d k=%d cube corner=%v side=%d: cell %v inCube=%v inRange=%v",
								c.Name(), sh.d, sh.k, cr, side, cell, inCube, inRange)
						}
						if inRange {
							got++
						}
					}
					if got != want {
						t.Fatalf("%s: cube %v side %d contains %d cells in range, want %d",
							c.Name(), cr, side, got, want)
					}
				}
			}
		}
	}
}

func TestMergeRanges(t *testing.T) {
	k := func(v uint64) bits.Key { return bits.KeyFromUint64(v) }
	r := func(lo, hi uint64) KeyRange { return KeyRange{Lo: k(lo), Hi: k(hi)} }

	tests := []struct {
		name string
		in   []KeyRange
		want []KeyRange
	}{
		{"empty", nil, nil},
		{"single", []KeyRange{r(3, 7)}, []KeyRange{r(3, 7)}},
		{"adjacent merge", []KeyRange{r(0, 3), r(4, 7)}, []KeyRange{r(0, 7)}},
		{"gap preserved", []KeyRange{r(0, 3), r(5, 7)}, []KeyRange{r(0, 3), r(5, 7)}},
		{"unsorted input", []KeyRange{r(8, 9), r(0, 1), r(2, 7)}, []KeyRange{r(0, 9)}},
		{"overlap", []KeyRange{r(0, 5), r(3, 9)}, []KeyRange{r(0, 9)}},
		{"contained", []KeyRange{r(0, 9), r(3, 4)}, []KeyRange{r(0, 9)}},
		{
			"three islands",
			[]KeyRange{r(10, 10), r(0, 0), r(5, 6), r(7, 7)},
			[]KeyRange{r(0, 0), r(5, 7), r(10, 10)},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MergeRanges(tt.in)
			if len(got) != len(tt.want) {
				t.Fatalf("got %d ranges %v, want %d %v", len(got), got, len(tt.want), tt.want)
			}
			for i := range got {
				if got[i].Lo.Cmp(tt.want[i].Lo) != 0 || got[i].Hi.Cmp(tt.want[i].Hi) != 0 {
					t.Fatalf("range %d: got %v want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestMergeRangesDoesNotMutateInput(t *testing.T) {
	k := func(v uint64) bits.Key { return bits.KeyFromUint64(v) }
	in := []KeyRange{{Lo: k(5), Hi: k(6)}, {Lo: k(0), Hi: k(1)}}
	MergeRanges(in)
	if got, _ := in[0].Lo.Uint64(); got != 5 {
		t.Fatal("MergeRanges mutated its input")
	}
}

func TestCurveNames(t *testing.T) {
	for _, c := range allCurves(t, 2, 4) {
		if c.Dims() != 2 || c.Bits() != 4 {
			t.Errorf("%s: wrong dims/bits", c.Name())
		}
	}
	if MustZ(2, 2).Name() != "z" || MustHilbert(2, 2).Name() != "hilbert" || MustGray(2, 2).Name() != "gray" {
		t.Error("curve names wrong")
	}
}
