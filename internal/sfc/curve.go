// Package sfc implements the space filling curves the paper analyzes — the
// Z (Morton) curve, the Hilbert curve and the Gray-code curve — as
// bijections between cells of the discrete universe [0,2^k−1]^d and d*k-bit
// keys, together with the key-range machinery (standard-cube ranges and run
// merging) on which both the exhaustive and the ε-approximate point
// dominance searches are built.
package sfc

import (
	"fmt"
	"slices"

	"sfccover/internal/bits"
)

// Curve is a proximity-preserving bijection between the cells of a
// d-dimensional universe with 2^k cells per dimension and the integers
// [0, 2^(d*k)). All curves here are recursive in the paper's sense, so
// every standard cube occupies one contiguous, block-aligned key range
// (Fact 2.1), which CubeRange exploits.
type Curve interface {
	// Name identifies the curve ("z", "hilbert", "gray", "onion").
	Name() string
	// Dims returns d, the number of dimensions.
	Dims() int
	// Bits returns k, the per-dimension resolution in bits.
	Bits() int
	// Key maps a cell (one coordinate per dimension, each < 2^k) to its
	// position in the curve's total order.
	Key(cell []uint32) bits.Key
	// Cell inverts Key.
	Cell(key bits.Key) []uint32
}

// Config carries the two parameters every curve needs.
type Config struct {
	Dims int // d >= 1
	Bits int // k in [1,32]
}

// Validate checks that the universe fits the key width.
func (c Config) Validate() error {
	if c.Dims < 1 {
		return fmt.Errorf("sfc: dims %d < 1", c.Dims)
	}
	if c.Bits < 1 || c.Bits > 32 {
		return fmt.Errorf("sfc: bits %d out of range [1,32]", c.Bits)
	}
	if c.Dims*c.Bits > bits.KeyBits {
		return fmt.Errorf("sfc: key width %d exceeds %d bits", c.Dims*c.Bits, bits.KeyBits)
	}
	return nil
}

// New constructs a curve by name: "z", "hilbert", "gray" or "onion".
func New(name string, cfg Config) (Curve, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch name {
	case "z", "morton":
		return NewZ(cfg)
	case "hilbert":
		return NewHilbert(cfg)
	case "gray":
		return NewGray(cfg)
	case "onion":
		return NewOnion(cfg)
	default:
		return nil, fmt.Errorf("sfc: unknown curve %q", name)
	}
}

// Names lists the curve families New accepts, in their canonical order.
func Names() []string { return []string{"z", "hilbert", "gray", "onion"} }

// KeyRange is a closed interval [Lo, Hi] of curve keys. A run in the
// paper's terminology is a maximal KeyRange whose cells all belong to the
// region under consideration.
type KeyRange struct {
	Lo, Hi bits.Key
}

// Contains reports whether key lies within the range.
func (r KeyRange) Contains(k bits.Key) bool {
	return r.Lo.Cmp(k) <= 0 && k.Cmp(r.Hi) <= 0
}

// CubeRange returns the key range occupied by the standard cube with the
// given minimum corner and side length (a power of two). It relies on
// Fact 2.1: for recursive curves the cube's cells form one contiguous,
// block-aligned segment, so the range is the key of any member cell with
// its low d*log2(side) bits cleared/set.
func CubeRange(c Curve, corner []uint32, side uint64) KeyRange {
	low := trailingBits(c.Dims(), side)
	k := c.Key(corner)
	return KeyRange{Lo: k.ClearLow(low), Hi: k.SetLow(low)}
}

func trailingBits(d int, side uint64) int {
	lvl := 0
	for s := side; s > 1; s >>= 1 {
		lvl++
	}
	return d * lvl
}

// MergeRanges sorts ranges by Lo and coalesces ranges that touch
// (hi+1 == next lo) or overlap, returning the minimal set of maximal
// ranges — the runs. The input slice is not modified.
func MergeRanges(ranges []KeyRange) []KeyRange {
	if len(ranges) == 0 {
		return nil
	}
	sorted := append([]KeyRange(nil), ranges...)
	return MergeRangesInPlace(sorted)
}

// MergeRangesInPlace is MergeRanges for scratch buffers: the input slice
// is sorted and compacted in place and the merged runs are returned as a
// prefix of it — no allocation in steady state. Callers that need the
// original ranges must use MergeRanges.
func MergeRangesInPlace(ranges []KeyRange) []KeyRange {
	if len(ranges) == 0 {
		return nil
	}
	slices.SortFunc(ranges, compareRangeLo)
	n := 0
	for _, r := range ranges[1:] {
		next, ok := ranges[n].Hi.Inc()
		if ok && r.Lo.Cmp(next) <= 0 {
			if ranges[n].Hi.Less(r.Hi) {
				ranges[n].Hi = r.Hi
			}
			continue
		}
		n++
		ranges[n] = r
	}
	return ranges[:n+1]
}

// compareRangeLo orders key ranges by their low end. A package-level
// function keeps MergeRangesInPlace allocation-free: sort.Slice would
// allocate its closure (and sort.Sort its interface box) on every call.
func compareRangeLo(a, b KeyRange) int { return a.Lo.Cmp(b.Lo) }
