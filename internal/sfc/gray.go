package sfc

import "sfccover/internal/bits"

// GrayCurve is Faloutsos' Gray-code curve [Fal86, Fal88]: cells are ordered
// by the rank of their interleaved coordinates in the standard reflected
// Gray code. Equivalently the key is the Gray-code inverse of the Z key,
// so consecutive cells along the curve differ in exactly one interleaved
// bit. It recursively partitions the universe like the Z curve, so the
// standard-cube/run machinery (Fact 2.1) applies.
type GrayCurve struct {
	cfg Config
}

// NewGray builds a Gray-code curve for the given universe.
func NewGray(cfg Config) (*GrayCurve, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &GrayCurve{cfg: cfg}, nil
}

// MustGray is NewGray for known-good configurations.
func MustGray(d, k int) *GrayCurve {
	c, err := NewGray(Config{Dims: d, Bits: k})
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Curve.
func (g *GrayCurve) Name() string { return "gray" }

// Dims implements Curve.
func (g *GrayCurve) Dims() int { return g.cfg.Dims }

// Bits implements Curve.
func (g *GrayCurve) Bits() int { return g.cfg.Bits }

// Key implements Curve: the rank whose Gray code equals the interleaved
// coordinates.
func (g *GrayCurve) Key(cell []uint32) bits.Key {
	return bits.Interleave(cell, g.cfg.Bits).GrayInv()
}

// Cell implements Curve, inverting Key.
func (g *GrayCurve) Cell(key bits.Key) []uint32 {
	return bits.Deinterleave(key.Gray(), g.cfg.Dims, g.cfg.Bits)
}

var _ Curve = (*GrayCurve)(nil)
