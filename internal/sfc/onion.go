package sfc

import (
	"fmt"
	mbits "math/bits"
	"sync"

	"sfccover/internal/bits"
)

// OnionMaxDims caps the dimensionality of the onion curve: the digit
// substitution tables have 2^d entries, so d is limited to keep them at
// most 2×64K uint16s (256 KiB, shared per d across instances).
const OnionMaxDims = 16

// OnionCurve is a recursive shell-ordered curve inspired by the Onion
// curve of Xu, Nguyen and Tirthapura (arXiv:1801.07399), which achieves
// near-optimal clustering for range queries by visiting the universe in
// concentric shells. The true Onion curve is not recursive in the
// paper's sense — its shells cut across standard cubes — and Fact 2.1
// (every standard cube is one contiguous, block-aligned key range) is
// load-bearing for this package's CubeRange, so we keep the recursive
// skeleton of the Z curve and apply the onion idea per bisection level
// instead: at every level the 2^d child octants are visited shell by
// shell, ordered by the Hamming weight of the child mask, so the
// children nearest the maximum corner of every block come last. Extremal
// query regions R(ℓ) are anchored at the maximum corner, and their
// intersection with any standard cube is again anchored at that cube's
// maximum corner, so the in-region cells of every block concentrate at
// the tail of its key range — the layout the run-merging step rewards.
// Whether that beats Hilbert's reflected continuity is an empirical
// question; E11 measures it.
//
// Mechanically the key is the Z key with each d-bit group substituted
// through a per-level rank table (shell order), so Key and Cell cost the
// same as the Z curve plus one table lookup per level.
type OnionCurve struct {
	cfg Config
	tab *onionTables
}

// onionTables maps a child octant mask to its shell-order digit and
// back. Tables are built once per dimensionality and shared.
type onionTables struct {
	rank []uint16 // child mask -> digit in shell order
	inv  []uint16 // digit -> child mask
}

var (
	onionMu     sync.Mutex
	onionShared = map[int]*onionTables{}
)

func onionTablesFor(d int) *onionTables {
	onionMu.Lock()
	defer onionMu.Unlock()
	if t := onionShared[d]; t != nil {
		return t
	}
	n := 1 << uint(d)
	t := &onionTables{rank: make([]uint16, n), inv: make([]uint16, n)}
	digit := 0
	for shell := 0; shell <= d; shell++ {
		for mask := 0; mask < n; mask++ {
			if mbits.OnesCount(uint(mask)) == shell {
				t.rank[mask] = uint16(digit)
				t.inv[digit] = uint16(mask)
				digit++
			}
		}
	}
	onionShared[d] = t
	return t
}

// NewOnion builds an onion curve for the given universe. The curve
// supports at most OnionMaxDims dimensions.
func NewOnion(cfg Config) (*OnionCurve, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Dims > OnionMaxDims {
		return nil, fmt.Errorf("sfc: onion curve supports at most %d dimensions, got %d", OnionMaxDims, cfg.Dims)
	}
	return &OnionCurve{cfg: cfg, tab: onionTablesFor(cfg.Dims)}, nil
}

// MustOnion is NewOnion for known-good configurations.
func MustOnion(d, k int) *OnionCurve {
	c, err := NewOnion(Config{Dims: d, Bits: k})
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Curve.
func (o *OnionCurve) Name() string { return "onion" }

// Dims implements Curve.
func (o *OnionCurve) Dims() int { return o.cfg.Dims }

// Bits implements Curve.
func (o *OnionCurve) Bits() int { return o.cfg.Bits }

// Key implements Curve: per level (most significant first) the child
// octant mask is gathered — dimension 1 in the most significant slot,
// the package's interleaving convention — and substituted through the
// shell-order rank table.
func (o *OnionCurve) Key(cell []uint32) bits.Key {
	var key bits.Key
	d, kb := o.cfg.Dims, o.cfg.Bits
	for y := kb - 1; y >= 0; y-- {
		var m uint32
		for i := 0; i < d; i++ {
			m = m<<1 | (cell[i]>>uint(y))&1
		}
		key = key.ShlN(d).Or(bits.KeyFromUint64(uint64(o.tab.rank[m])))
	}
	return key
}

// Cell implements Curve by inverting the digit substitution level by
// level.
func (o *OnionCurve) Cell(key bits.Key) []uint32 {
	d, kb := o.cfg.Dims, o.cfg.Bits
	cell := make([]uint32, d)
	mask := bits.LowMask(d)
	for y := 0; y < kb; y++ {
		dig, _ := key.And(mask).Uint64()
		m := o.tab.inv[dig]
		for i := 0; i < d; i++ {
			cell[i] |= uint32(m>>uint(d-1-i)&1) << uint(y)
		}
		key = key.ShrN(d)
	}
	return cell
}

var _ Curve = (*OnionCurve)(nil)
