package sfc

import "sfccover/internal/bits"

// HilbertCurve is the d-dimensional Hilbert curve [Hil91], implemented with
// Skilling's transpose algorithm ("Programming the Hilbert curve", 2004).
// Like the Z curve it recursively partitions the universe, so Fact 2.1 and
// the whole run machinery apply unchanged; the paper notes its query
// performance is within a constant factor of the Z curve's [MJFS01].
type HilbertCurve struct {
	cfg Config
}

// NewHilbert builds a Hilbert curve for the given universe.
func NewHilbert(cfg Config) (*HilbertCurve, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &HilbertCurve{cfg: cfg}, nil
}

// MustHilbert is NewHilbert for known-good configurations.
func MustHilbert(d, k int) *HilbertCurve {
	c, err := NewHilbert(Config{Dims: d, Bits: k})
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Curve.
func (h *HilbertCurve) Name() string { return "hilbert" }

// Dims implements Curve.
func (h *HilbertCurve) Dims() int { return h.cfg.Dims }

// Bits implements Curve.
func (h *HilbertCurve) Bits() int { return h.cfg.Bits }

// Key implements Curve: coordinates -> transposed Hilbert index ->
// interleaved key (dimension 0 holds the most significant bit of each
// group in Skilling's representation, matching bits.Interleave). The
// transpose works on a stack copy: dims are capped at 16 by Config.
func (h *HilbertCurve) Key(cell []uint32) bits.Key {
	var buf [16]uint32
	x := buf[:len(cell)]
	copy(x, cell)
	axesToTranspose(x, h.cfg.Bits)
	return bits.Interleave(x, h.cfg.Bits)
}

// Cell implements Curve, inverting Key.
func (h *HilbertCurve) Cell(key bits.Key) []uint32 {
	x := bits.Deinterleave(key, h.cfg.Dims, h.cfg.Bits)
	transposeToAxes(x, h.cfg.Bits)
	return x
}

// axesToTranspose converts cell coordinates into the "transposed" Hilbert
// index in place. b is the number of bits per coordinate.
func axesToTranspose(x []uint32, b int) {
	n := len(x)
	if n < 2 || b < 1 {
		return // 1-d Hilbert is the identity; nothing to rotate
	}
	m := uint32(1) << uint(b-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose in place.
func transposeToAxes(x []uint32, b int) {
	n := len(x)
	if n < 2 || b < 1 {
		return
	}
	bigN := uint32(2) << uint(b-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != bigN; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

var _ Curve = (*HilbertCurve)(nil)
