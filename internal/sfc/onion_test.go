package sfc

import (
	mbits "math/bits"
	"testing"
)

// TestOnionShellOrder verifies the defining property of the onion
// ordering at the top level: keys are ordered primarily by the shell
// (Hamming weight of the top child mask), so the child containing the
// maximum corner comes last.
func TestOnionShellOrder(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5} {
		c := MustOnion(d, 4)
		half := uint32(1) << 3 // top-level bisection
		prevShell := -1
		// Walk the 2^d top-level children in key order of their minimum
		// corners; shells must be non-decreasing.
		type child struct {
			mask  int
			shell int
		}
		children := make([]child, 0, 1<<uint(d))
		for mask := 0; mask < 1<<uint(d); mask++ {
			children = append(children, child{mask, mbits.OnesCount(uint(mask))})
		}
		// Order children by the key of their min corner.
		corner := make([]uint32, d)
		keyOf := func(mask int) uint64 {
			for i := 0; i < d; i++ {
				corner[i] = 0
				if mask>>uint(i)&1 == 1 {
					corner[i] = half
				}
			}
			v, ok := c.Key(corner).Uint64()
			if !ok {
				t.Fatalf("d=%d key overflows uint64", d)
			}
			return v
		}
		for i := 0; i < len(children); i++ {
			for j := i + 1; j < len(children); j++ {
				if keyOf(children[j].mask) < keyOf(children[i].mask) {
					children[i], children[j] = children[j], children[i]
				}
			}
		}
		for _, ch := range children {
			if ch.shell < prevShell {
				t.Fatalf("d=%d: shell order violated: shell %d after %d", d, ch.shell, prevShell)
			}
			prevShell = ch.shell
		}
		if last := children[len(children)-1].mask; last != 1<<uint(d)-1 {
			t.Fatalf("d=%d: max-corner child should come last, got mask %b", d, last)
		}
	}
}

// TestOnionDimsCap checks the table-size cap and that New routes "onion".
func TestOnionDimsCap(t *testing.T) {
	if _, err := New("onion", Config{Dims: OnionMaxDims + 1, Bits: 2}); err == nil {
		t.Fatal("onion with d > OnionMaxDims should fail")
	}
	c, err := New("onion", Config{Dims: OnionMaxDims, Bits: 2})
	if err != nil {
		t.Fatalf("onion at the dims cap: %v", err)
	}
	if c.Name() != "onion" {
		t.Fatalf("Name() = %q", c.Name())
	}
}

// TestOnionSharesTables checks that two instances of the same
// dimensionality share one table set (the tables are 2^d entries).
func TestOnionSharesTables(t *testing.T) {
	a, b := MustOnion(6, 4), MustOnion(6, 8)
	if a.tab != b.tab {
		t.Fatal("onion tables should be shared per dimensionality")
	}
}

func TestMergeRangesInPlaceMatchesMergeRanges(t *testing.T) {
	c := MustZ(2, 4)
	var ranges []KeyRange
	for x := uint32(0); x < 16; x += 2 {
		for y := uint32(0); y < 16; y += 4 {
			ranges = append(ranges, CubeRange(c, []uint32{x, y}, 1))
		}
	}
	want := MergeRanges(ranges)
	scratch := append([]KeyRange(nil), ranges...)
	got := MergeRangesInPlace(scratch)
	if len(got) != len(want) {
		t.Fatalf("run count mismatch: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("run %d mismatch: %v vs %v", i, got[i], want[i])
		}
	}
}
