package sfc

import "sfccover/internal/bits"

// ZCurve is the Z (Morton) space filling curve of Section 2: the key of a
// cell is the bit interleaving of its coordinates, with dimension 1
// occupying the most significant slot of each d-bit group. The coordinate
// example of Section 5 — cell (3,5) = (011,101)₂ has key (011011)₂ = 27 —
// fixes the convention.
type ZCurve struct {
	cfg Config
}

// NewZ builds a Z curve for the given universe.
func NewZ(cfg Config) (*ZCurve, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ZCurve{cfg: cfg}, nil
}

// MustZ is NewZ for known-good configurations (tests, examples).
func MustZ(d, k int) *ZCurve {
	c, err := NewZ(Config{Dims: d, Bits: k})
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Curve.
func (z *ZCurve) Name() string { return "z" }

// Dims implements Curve.
func (z *ZCurve) Dims() int { return z.cfg.Dims }

// Bits implements Curve.
func (z *ZCurve) Bits() int { return z.cfg.Bits }

// Key implements Curve by bit interleaving.
func (z *ZCurve) Key(cell []uint32) bits.Key {
	return bits.Interleave(cell, z.cfg.Bits)
}

// Cell implements Curve by de-interleaving.
func (z *ZCurve) Cell(key bits.Key) []uint32 {
	return bits.Deinterleave(key, z.cfg.Dims, z.cfg.Bits)
}

var _ Curve = (*ZCurve)(nil)
