package dominance

import "sfccover/internal/geom"

// Linear is the brute-force baseline: points in a slice, queries scan all
// of them. O(n·d) per query, exact. This is what a router without any
// index effectively does, and the yardstick for the paper's "sublinear in
// the number of subscriptions" claim.
type Linear struct {
	points [][]uint32
	ids    []uint64
}

// NewLinear returns an empty linear searcher.
func NewLinear() *Linear { return &Linear{} }

var _ Searcher = (*Linear)(nil)

// Len implements Searcher.
func (l *Linear) Len() int { return len(l.ids) }

// Insert implements Searcher.
func (l *Linear) Insert(p []uint32, id uint64) {
	l.points = append(l.points, append([]uint32(nil), p...))
	l.ids = append(l.ids, id)
}

// Delete implements Searcher.
func (l *Linear) Delete(p []uint32, id uint64) bool {
	for i := range l.ids {
		if l.ids[i] != id {
			continue
		}
		if !equalPoint(l.points[i], p) {
			continue
		}
		last := len(l.ids) - 1
		l.points[i], l.points[last] = l.points[last], nil
		l.ids[i] = l.ids[last]
		l.points = l.points[:last]
		l.ids = l.ids[:last]
		return true
	}
	return false
}

// QueryDominating implements Searcher.
func (l *Linear) QueryDominating(q []uint32) (uint64, bool) {
	for i, p := range l.points {
		if geom.Dominates(p, q) {
			return l.ids[i], true
		}
	}
	return 0, false
}

func equalPoint(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
