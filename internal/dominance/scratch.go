package dominance

import (
	"sfccover/internal/cubes"
	"sfccover/internal/geom"
)

// queryScratch is the per-worker reusable state of one query: the region
// buffers, the decomposition arenas and the level enumerator. An Index
// owns one (queries on an Index are single-goroutine, like its writes);
// a ShardedIndex keeps a pool and checks one out per query. In steady
// state no query-path buffer is allocated.
type queryScratch struct {
	lens   []uint64 // query-region side lengths
	rectLo []uint32 // region rectangle scratch
	rectHi []uint32
	dec    cubes.Decomposer
	enum   cubes.LevelEnum
	// stats is the query's working Stats: the search closures take its
	// address, which would force a stack-local Stats to escape and cost
	// one heap allocation per query. QueryTraced zeroes it, threads
	// &sc.stats through the search, and returns it by value.
	stats Stats
}

// region builds the extremal query region over the scratch lens buffer.
// The returned region aliases the scratch: anything retained beyond the
// query (cache entries, Stats) must copy.
func (sc *queryScratch) region(q []uint32, k int) geom.Extremal {
	d := len(q)
	if cap(sc.lens) < d {
		sc.lens = make([]uint64, d)
	}
	sc.lens = sc.lens[:d]
	max := uint64(1) << uint(k)
	for i, x := range q {
		sc.lens[i] = max - uint64(x)
	}
	return geom.Extremal{Len: sc.lens, K: k}
}

// rect materializes the region as a rectangle over the scratch corner
// buffers (the allocation-free form of Extremal.Rect).
func (sc *queryScratch) rect(region geom.Extremal) geom.Rect {
	d := len(region.Len)
	if cap(sc.rectLo) < d {
		sc.rectLo = make([]uint32, d)
		sc.rectHi = make([]uint32, d)
	}
	lo, hi := sc.rectLo[:d], sc.rectHi[:d]
	max := uint64(1) << uint(region.K)
	for i, l := range region.Len {
		lo[i] = uint32(max - l)
		hi[i] = uint32(max - 1)
	}
	return geom.Rect{Lo: lo, Hi: hi}
}
