package dominance

import (
	"time"

	"sfccover/internal/bits"
	"sfccover/internal/cubes"
	"sfccover/internal/geom"
	"sfccover/internal/obs"
	"sfccover/internal/sfc"
)

// probeFn answers one run probe: is there an indexed point with a curve
// key in [lo, hi], and if so, which? The single-array index answers with
// one ordered search; the sharded index routes the range to the key-slice
// shards it intersects. Each call is one unit of the paper's query cost
// per array actually probed.
type probeFn func(lo, hi bits.Key) (id uint64, ok bool)

// searchExhaustive decomposes the whole query region, merges the
// partition into maximal runs — the probe count is runs(R(ℓ)), the paper's
// exhaustive cost — and probes every run until a point turns up. A
// non-nil tr collects stage timings: "decompose" covers the partition and
// run merge, "probes" the probe loop.
//
//sfc:hotpath
func searchExhaustive(curve sfc.Curve, k int, sc *queryScratch, probe probeFn, region geom.Extremal, stats *Stats, tr *obs.QueryTrace) (uint64, bool, error) {
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	partition, err := sc.dec.Decompose(sc.rect(region), k)
	if err != nil {
		return 0, false, err
	}
	runs := sc.dec.Runs(curve, partition)
	if tr != nil {
		tr.AddStage("decompose", time.Since(t0), len(partition))
		pt := time.Now()
		defer func() { tr.AddStage("probes", time.Since(pt), stats.RunsProbed) }()
	}
	stats.CubesGenerated = len(partition)
	stats.VolumeFraction = 1
	stats.SearchedLen = append([]uint64(nil), region.Len...)
	for _, r := range runs {
		stats.RunsProbed++
		if id, ok := probe(r.Lo, r.Hi); ok {
			stats.Found = true
			return id, true, nil
		}
	}
	return 0, false, nil
}

// searchApprox is the Section 5 algorithm: truncate the region per
// Lemma 3.2, then enumerate the greedy partition level by level (largest
// cubes first) with the Appendix-A algorithm, probing each cube's key
// range as it is produced. The search ends at the first hit, at the level
// boundary where the searched volume reaches (1−ε) of the query region, or
// at the maxCubes cap. A non-nil tr collects stage timings: "truncate"
// covers the Lemma 3.2 truncation, "enumerate_probes" the interleaved
// cube enumeration and probe loop.
//
//sfc:hotpath
func searchApprox(curve sfc.Curve, k, maxCubes int, sc *queryScratch, probe probeFn, region geom.Extremal, eps float64, stats *Stats, tr *obs.QueryTrace) (uint64, bool, error) {
	fullVol := region.Volume()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	target, m, err := cubes.TruncateExtremal(region, eps)
	if err != nil {
		return 0, false, err
	}
	if tr != nil {
		tr.AddStage("truncate", time.Since(t0), m)
		pt := time.Now()
		defer func() { tr.AddStage("enumerate_probes", time.Since(pt), stats.RunsProbed) }()
	}
	stats.M = m
	targetVol := (1 - eps) * fullVol

	var (
		foundID  uint64
		searched float64 // volume probed so far
		capped   bool
	)
	for level := k; level >= 0; level-- {
		err := sc.enum.Visit(target, level, func(corner []uint32, side uint64) bool {
			stats.CubesGenerated++
			stats.RunsProbed++
			cubeVol := 1.0
			for range corner {
				cubeVol *= float64(side)
			}
			searched += cubeVol
			r := sfc.CubeRange(curve, corner, side)
			if id, ok := probe(r.Lo, r.Hi); ok {
				foundID = id
				stats.Found = true
				return false
			}
			if maxCubes > 0 && stats.CubesGenerated >= maxCubes {
				capped = true
				return false
			}
			return true
		})
		if err != nil {
			return 0, false, err
		}
		stats.VolumeFraction = searched / fullVol
		if stats.Found {
			return foundID, true, nil
		}
		if capped {
			if level < k {
				stats.SearchedLen = bits.SVec(target.Len, level+1)
			}
			return 0, false, nil
		}
		// Level complete: the searched prefix tiles R(S_level(ℓ'))
		// (Lemma 3.4). Stop at the boundary once the volume target is met.
		stats.SearchedLen = bits.SVec(target.Len, level)
		if searched >= targetVol {
			return 0, false, nil
		}
	}
	// Ran through every level: the whole truncated region was searched.
	stats.SearchedLen = append([]uint64(nil), target.Len...)
	return 0, false, nil
}
