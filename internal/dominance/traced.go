package dominance

import (
	"time"

	"sfccover/internal/bits"
	"sfccover/internal/geom"
	"sfccover/internal/obs"
	"sfccover/internal/sfc"
)

// probeSampleMask times one run probe in 8 within a traced query: a
// probe is a short ordered-structure search, so reading the clock
// around every one would meter the clock, not the probe. Combined with
// query-level trace sampling, the "run_probe" histogram holds a
// uniform sample of probe latencies — the distribution is unbiased,
// only the _count is scaled — and untraced queries pay nothing.
const probeSampleMask = 7

// SetObserver attaches a latency observer: run probes issued by traced
// queries are recorded (sampled) into the observer's "run_probe"
// histogram. Must be called before the index serves concurrent queries
// — the field is read without synchronization on the probe path.
func (x *Index) SetObserver(o *obs.Observer) { x.probeHist = o.Hist("run_probe") }

// SetObserver attaches a latency observer to the sharded index; see
// (*Index).SetObserver.
func (x *ShardedIndex) SetObserver(o *obs.Observer) { x.probeHist = o.Hist("run_probe") }

// Query answers a point dominance query at q. eps == 0 requests an
// exhaustive search (Problem 1); 0 < eps < 1 requests an ε-approximate
// search (Problem 2) that truncates the query region per Lemma 3.2 and
// probes cubes largest-first, stopping as soon as a point is found or
// the searched volume reaches (1−ε) of the query region.
func (x *Index) Query(q []uint32, eps float64) (uint64, bool, Stats, error) {
	return x.QueryTraced(q, eps, nil)
}

// QueryTraced is Query with an optional trace record: when tr is
// non-nil the search appends its stage timings (cache replay or build,
// decomposition or truncation, then the probe loop) to it. tr may be
// nil.
//
//sfc:hotpath
func (x *Index) QueryTraced(q []uint32, eps float64, tr *obs.QueryTrace) (uint64, bool, Stats, error) {
	if len(q) != x.cfg.Dims {
		return 0, false, Stats{}, errDims(len(q), x.cfg.Dims)
	}
	if eps < 0 || eps >= 1 {
		return 0, false, Stats{}, errEps(eps)
	}
	sc := &x.scratch
	sc.stats = Stats{}
	stats := &sc.stats
	region := sc.region(q, x.cfg.Bits)
	stats.AspectRatio = region.AspectRatio()
	maxCubes := x.cfg.MaxCubes
	if x.budget != nil {
		eps, maxCubes = x.budget.adapt(eps, maxCubes, x.cfg.Dims, region)
	}
	// Probe metering rides the trace sample: untraced queries — the vast
	// majority — run the raw probe with no wrapper, no counter and no
	// clock reads.
	probe := x.rawProbe
	if tr != nil {
		probe = sampledProbe(probe, x.probeHist)
	}
	id, ok, err := dispatchSearch(x.curve, x.cfg.Bits, maxCubes, x.cache, sc, probe, region, eps, stats, tr)
	if x.budget != nil && err == nil {
		x.budget.record(stats, eps)
	}
	return id, ok, sc.stats, err
}

// dispatchSearch routes one query to the cache when one is attached and
// to the uncached searches otherwise.
//
//sfc:hotpath
func dispatchSearch(curve sfc.Curve, k, maxCubes int, cache *decompCache, sc *queryScratch, probe probeFn, region geom.Extremal, eps float64, stats *Stats, tr *obs.QueryTrace) (uint64, bool, error) {
	if cache != nil {
		return cache.search(curve, k, maxCubes, sc, probe, region, eps, stats, tr)
	}
	if eps == 0 {
		return searchExhaustive(curve, k, sc, probe, region, stats, tr)
	}
	return searchApprox(curve, k, maxCubes, sc, probe, region, eps, stats, tr)
}

// QueryTraced is Query with an optional trace record: stage timings
// plus per-slice probe counts (tr.Slices) showing how the probe traffic
// spread over the key slices. tr may be nil.
//
//sfc:hotpath
func (x *ShardedIndex) QueryTraced(q []uint32, eps float64, tr *obs.QueryTrace) (uint64, bool, Stats, error) {
	if len(q) != x.cfg.Dims {
		return 0, false, Stats{}, errDims(len(q), x.cfg.Dims)
	}
	if eps < 0 || eps >= 1 {
		return 0, false, Stats{}, errEps(eps)
	}
	sc := x.scratchPool.Get().(*queryScratch)
	defer x.scratchPool.Put(sc)
	sc.stats = Stats{}
	stats := &sc.stats
	region := sc.region(q, x.cfg.Bits)
	stats.AspectRatio = region.AspectRatio()
	maxCubes := x.cfg.MaxCubes
	if x.budget != nil {
		eps, maxCubes = x.budget.adapt(eps, maxCubes, x.cfg.Dims, region)
	}
	probe := x.tracedProbe(tr)
	id, ok, err := dispatchSearch(x.curve, x.cfg.Bits, maxCubes, x.cache, sc, probe, region, eps, stats, tr)
	if x.budget != nil && err == nil {
		x.budget.record(stats, eps)
	}
	return id, ok, sc.stats, err
}

// tracedProbe picks the probe implementation for one query: the plain
// routed probe for untraced queries (no wrapper, no clock reads), else
// a wrapper that counts probes per slice into tr and samples probe
// latency into the histogram. The counter lives in the closure — each
// traced query owns its own — so traced probing adds no shared state
// to the lock-free probe path.
func (x *ShardedIndex) tracedProbe(tr *obs.QueryTrace) probeFn {
	if tr == nil {
		return x.rawProbe
	}
	hist := x.probeHist
	n := 0
	return func(lo, hi bits.Key) (uint64, bool) {
		n++
		if hist != nil && n&probeSampleMask == 1 {
			t0 := time.Now()
			id, ok := x.probeTouched(lo, hi, tr)
			hist.Observe(time.Since(t0))
			return id, ok
		}
		return x.probeTouched(lo, hi, tr)
	}
}

// probeTouched is probe with per-slice trace accounting: identical
// retry-validated routing, but every slice visited is counted against
// tr. tr may be nil (TouchSlice is nil-safe).
//
//sfc:hotpath
func (x *ShardedIndex) probeTouched(lo, hi bits.Key, tr *obs.QueryTrace) (uint64, bool) {
	for {
		tabPtr := x.table.Load()
		first, last := routeKey(*tabPtr, lo), routeKey(*tabPtr, hi)
		var id uint64
		ok := false
		for i := first; i <= last && !ok; i++ {
			tr.TouchSlice(i)
			s := &x.shards[i]
			s.mu.RLock()
			id, ok = s.arr.FirstInRange(lo, hi)
			s.mu.RUnlock()
		}
		if x.table.Load() == tabPtr {
			return id, ok
		}
	}
}

// sampledProbe wraps a raw probe with 1-in-8 latency sampling; it
// returns the probe unchanged when no histogram is attached.
func sampledProbe(raw probeFn, hist *obs.Histogram) probeFn {
	if hist == nil {
		return raw
	}
	n := 0
	return func(lo, hi bits.Key) (uint64, bool) {
		n++
		if n&probeSampleMask == 1 {
			t0 := time.Now()
			id, ok := raw(lo, hi)
			hist.Observe(time.Since(t0))
			return id, ok
		}
		return raw(lo, hi)
	}
}

// CostOf copies a Stats into the dependency-free trace cost record.
func CostOf(s Stats) obs.QueryCost {
	return obs.QueryCost{
		M:              s.M,
		CubesGenerated: s.CubesGenerated,
		RunsProbed:     s.RunsProbed,
		VolumeFraction: s.VolumeFraction,
		AspectRatio:    s.AspectRatio,
		Found:          s.Found,
	}
}
