package dominance

import (
	"math/rand"
	"testing"

	"sfccover/internal/geom"
)

func TestCountDominatingExhaustiveMatchesOracle(t *testing.T) {
	const d, k = 2, 7
	idx := MustIndex(Config{Dims: d, Bits: k})
	rng := rand.New(rand.NewSource(71))
	pts := randomPoints(rng, 120, d, k)
	for i, p := range pts {
		idx.Insert(p, uint64(i))
	}
	for trial := 0; trial < 150; trial++ {
		q := randomPoints(rng, 1, d, k)[0]
		want := 0
		for _, p := range pts {
			if geom.Dominates(p, q) {
				want++
			}
		}
		got, st, err := idx.CountDominating(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("q=%v: exhaustive count %d, oracle %d", q, got, want)
		}
		if (got > 0) != st.Found {
			t.Fatal("Found flag inconsistent with count")
		}
	}
}

func TestCountDominatingApproxNeverOvercounts(t *testing.T) {
	const d, k = 3, 6
	idx := MustIndex(Config{Dims: d, Bits: k})
	rng := rand.New(rand.NewSource(73))
	pts := randomPoints(rng, 150, d, k)
	for i, p := range pts {
		idx.Insert(p, uint64(i))
	}
	for trial := 0; trial < 80; trial++ {
		q := randomPoints(rng, 1, d, k)[0]
		exact := 0
		for _, p := range pts {
			if geom.Dominates(p, q) {
				exact++
			}
		}
		for _, eps := range []float64{0.4, 0.1} {
			got, _, err := idx.CountDominating(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if got > exact {
				t.Fatalf("approximate count %d exceeds exact %d", got, exact)
			}
		}
	}
}

func TestVisitDominatingIDsAreGenuine(t *testing.T) {
	const d, k = 2, 8
	idx := MustIndex(Config{Dims: d, Bits: k})
	rng := rand.New(rand.NewSource(79))
	pts := randomPoints(rng, 200, d, k)
	for i, p := range pts {
		idx.Insert(p, uint64(i))
	}
	for trial := 0; trial < 100; trial++ {
		q := randomPoints(rng, 1, d, k)[0]
		seen := make(map[uint64]bool)
		_, err := idx.VisitDominating(q, 0.2, func(id uint64) bool {
			if seen[id] {
				t.Fatalf("id %d visited twice", id)
			}
			seen[id] = true
			if !geom.Dominates(pts[id], q) {
				t.Fatalf("visited non-dominating point %v for q=%v", pts[id], q)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestVisitDominatingEarlyStop(t *testing.T) {
	const d, k = 2, 8
	idx := MustIndex(Config{Dims: d, Bits: k})
	for i := 0; i < 50; i++ {
		idx.Insert([]uint32{200 + uint32(i), 200}, uint64(i))
	}
	visits := 0
	_, err := idx.VisitDominating([]uint32{0, 0}, 0, func(uint64) bool {
		visits++
		return visits < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits != 5 {
		t.Fatalf("visited %d, want early stop at 5", visits)
	}
}

func TestVisitDominatingValidation(t *testing.T) {
	idx := MustIndex(Config{Dims: 2, Bits: 4})
	if _, err := idx.VisitDominating([]uint32{1}, 0, func(uint64) bool { return true }); err == nil {
		t.Error("wrong dims must fail")
	}
	if _, err := idx.VisitDominating([]uint32{1, 1}, 1.5, func(uint64) bool { return true }); err == nil {
		t.Error("bad eps must fail")
	}
}

func TestVisitDominatingRespectsMaxCubes(t *testing.T) {
	idx := MustIndex(Config{Dims: 2, Bits: 12, MaxCubes: 7})
	q := []uint32{uint32(1<<12 - 257), uint32(1<<12 - 257)}
	st, err := idx.VisitDominating(q, 0.001, func(uint64) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.CubesGenerated > 7 {
		t.Fatalf("cap ignored: %d cubes", st.CubesGenerated)
	}
}
