package dominance

import "sfccover/internal/geom"

// KDTree is an exact dominance baseline: a k-d tree with axis-cycling
// splits and subtree pruning. It represents the practical exact indexes
// the related work uses, standing in for the impractical Willard–Lueker
// structure (see DESIGN.md). Deletion is by tombstone, which suits the
// pub/sub workload where unsubscriptions are rare relative to queries.
type KDTree struct {
	root *kdNode
	dims int
	size int
}

type kdNode struct {
	point       []uint32
	id          uint64
	axis        int
	deleted     bool
	left, right *kdNode
	// liveCount is the number of non-tombstoned nodes in this subtree,
	// letting queries skip fully dead subtrees.
	liveCount int
}

// NewKDTree returns an empty tree for points with the given dimensionality.
func NewKDTree(dims int) *KDTree { return &KDTree{dims: dims} }

var _ Searcher = (*KDTree)(nil)

// Len implements Searcher.
func (t *KDTree) Len() int { return t.size }

// Insert implements Searcher.
func (t *KDTree) Insert(p []uint32, id uint64) {
	n := &kdNode{point: append([]uint32(nil), p...), id: id, liveCount: 1}
	if t.root == nil {
		t.root = n
		t.size = 1
		return
	}
	cur := t.root
	for {
		cur.liveCount++
		n.axis = (cur.axis + 1) % t.dims
		if p[cur.axis] < cur.point[cur.axis] {
			if cur.left == nil {
				cur.left = n
				break
			}
			cur = cur.left
		} else {
			if cur.right == nil {
				cur.right = n
				break
			}
			cur = cur.right
		}
	}
	t.size++
}

// Delete implements Searcher (tombstone).
func (t *KDTree) Delete(p []uint32, id uint64) bool {
	// Walk the insert path; equal coordinates always went right.
	var path []*kdNode
	cur := t.root
	for cur != nil {
		path = append(path, cur)
		if !cur.deleted && cur.id == id && equalPoint(cur.point, p) {
			cur.deleted = true
			t.size--
			for _, n := range path {
				n.liveCount--
			}
			return true
		}
		if p[cur.axis] < cur.point[cur.axis] {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return false
}

// QueryDominating implements Searcher: depth-first search of the extremal
// region [q, max]^d, pruning left subtrees whose split already fails the
// query's lower bound and subtrees with no live nodes.
func (t *KDTree) QueryDominating(q []uint32) (uint64, bool) {
	return t.query(t.root, q)
}

func (t *KDTree) query(n *kdNode, q []uint32) (uint64, bool) {
	if n == nil || n.liveCount == 0 {
		return 0, false
	}
	if !n.deleted && geom.Dominates(n.point, q) {
		return n.id, true
	}
	// Right subtree holds points with coordinate >= split on this axis;
	// always eligible. Search it first: larger coordinates dominate more.
	if id, ok := t.query(n.right, q); ok {
		return id, true
	}
	// Left subtree holds strictly smaller coordinates on this axis; it can
	// contain a dominating point only if the query bound lies below the split.
	if q[n.axis] < n.point[n.axis] {
		return t.query(n.left, q)
	}
	return 0, false
}
