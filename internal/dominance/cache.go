package dominance

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sfccover/internal/bits"
	"sfccover/internal/cubes"
	"sfccover/internal/geom"
	"sfccover/internal/obs"
	"sfccover/internal/sfc"
)

const (
	// DefaultCacheSize is the decomposition cache bound, in entries,
	// selected by Config.CacheSize == 0.
	DefaultCacheSize = 4096
	// cacheShardCount shards the cache map so concurrent queries on a
	// ShardedIndex do not serialize on one lock.
	cacheShardCount = 16
	// cacheBuildMaxCubes caps the cubes a single cache entry may hold: a
	// query whose decomposition prefix exceeds it is answered by the
	// uncached search instead of being cached. DefaultMaxCubes-sized
	// partitions would otherwise pin unbounded memory per entry.
	cacheBuildMaxCubes = 4096
)

// decompCache memoizes query decompositions: the probe-ordered key
// ranges (and the per-level bookkeeping the paper's Stats need) for a
// query region under a given ε-budget. Brokers re-screen identical
// rectangles every churn round, and a decomposition depends only on the
// region, the budget and the curve — never on the indexed points — so
// entries are immutable, need no invalidation, and a hit skips
// decomposition and run-merging entirely. Replaying an entry issues
// bit-identical probes (and produces bit-identical Stats) to the search
// that built it.
//
// Admission is two-touch: building an entry enumerates the query's full
// region-determined cube prefix without probing, which costs far more
// than the interleaved search when that search would stop at an early
// hit. A shape seen once is only noted; the build happens on its second
// occurrence. One-shot queries therefore pay a hash lookup, not a
// build, and recurring shapes amortize one build over every repeat.
type decompCache struct {
	shards      [cacheShardCount]cacheShardMap
	perShardCap int
	hits        atomic.Uint64
	misses      atomic.Uint64
}

type cacheShardMap struct {
	mu   sync.Mutex
	m    map[uint64]*cacheEntry
	seen map[uint64]struct{} // admission filter: shapes missed once
}

func newDecompCache(size int) *decompCache {
	if size == 0 {
		size = DefaultCacheSize
	}
	per := size / cacheShardCount
	if per < 1 {
		per = 1
	}
	c := &decompCache{perShardCap: per}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*cacheEntry)
		c.shards[i].seen = make(map[uint64]struct{})
	}
	return c
}

// cacheEntry is one memoized decomposition. All fields are immutable
// after publication; the slices are shared read-only into the Stats of
// every query that replays the entry.
type cacheEntry struct {
	// Key: the exact region side lengths plus the budget that shaped the
	// decomposition. ε is exact for fixed budgets and grid-quantized by
	// the adaptive policy before it reaches the cache.
	lens     []uint64
	eps      float64
	maxCubes int

	// Replay data. ranges is the probe order; for exhaustive entries it
	// holds the merged runs, for approximate ones one range per cube.
	ranges []sfc.KeyRange

	// tooBig marks a negative entry: the decomposition prefix outgrew
	// cacheBuildMaxCubes, so the region is memoized as "answer uncached"
	// and repeated queries skip the futile rebuild.
	tooBig bool

	// partial marks an entry recorded from a search that ended at a
	// probe hit: ranges holds only the enumerated prefix up to and
	// including the hit cube. Replaying it answers exactly like the
	// uncached search while the hit (or an earlier one) stands; if the
	// whole prefix misses, the caller reruns the full search.
	partial bool

	exhaustive bool
	nCubes     int // CubesGenerated of an exhaustive replay

	m        int         // truncation parameter of an approximate replay
	vols     []float64   // per-cube volumes, aligned with ranges
	marks    []levelMark // level-completion points, ascending cube count
	finalLen []uint64    // SearchedLen when every range misses (may be nil)
}

// levelMark records that after cubeCount cubes the enumeration had
// completed a level whose searched region is R(lens) (Lemma 3.4).
type levelMark struct {
	cubeCount int
	lens      []uint64
}

func (e *cacheEntry) matches(lens []uint64, eps float64, maxCubes int) bool {
	if e.eps != eps || e.maxCubes != maxCubes || len(e.lens) != len(lens) {
		return false
	}
	for i, l := range lens {
		if e.lens[i] != l {
			return false
		}
	}
	return true
}

// entryHash is FNV-1a over the region lens and the budget.
func entryHash(lens []uint64, eps float64, maxCubes int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, l := range lens {
		mix(l)
	}
	mix(math.Float64bits(eps))
	mix(uint64(maxCubes))
	return h
}

// get returns the entry for the key, or nil. Collisions on the 64-bit
// hash are resolved by full-key comparison and treated as misses.
func (c *decompCache) get(h uint64, lens []uint64, eps float64, maxCubes int) *cacheEntry {
	s := &c.shards[h&(cacheShardCount-1)]
	s.mu.Lock()
	e := s.m[h]
	s.mu.Unlock()
	if e != nil && e.matches(lens, eps, maxCubes) {
		return e
	}
	return nil
}

// put publishes an entry, evicting one arbitrary entry when the shard is
// full (map iteration order makes the victim effectively random).
func (c *decompCache) put(h uint64, e *cacheEntry) {
	s := &c.shards[h&(cacheShardCount-1)]
	s.mu.Lock()
	if _, exists := s.m[h]; !exists && len(s.m) >= c.perShardCap {
		for victim := range s.m {
			delete(s.m, victim)
			break
		}
	}
	s.m[h] = e
	s.mu.Unlock()
}

// admit decides whether a missed shape should be built now: the first
// miss only registers it in the bounded seen filter, the second admits
// it (and clears the registration, keeping the filter small).
func (c *decompCache) admit(h uint64) bool {
	s := &c.shards[h&(cacheShardCount-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.seen[h]; ok {
		delete(s.seen, h)
		return true
	}
	if len(s.seen) >= c.perShardCap {
		for victim := range s.seen {
			delete(s.seen, victim)
			break
		}
	}
	s.seen[h] = struct{}{}
	return false
}

// len reports the live entry count (for tests and stats).
func (c *decompCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// search answers one query through the cache: a hit replays the
// memoized probe order with zero allocations; a miss on a shape seen
// before runs the interleaved search while recording it into an entry,
// so the recording pass does exactly the uncached search's work (plus
// the appends) and issues bit-identical probe sequences. A first-time
// shape runs the plain uncached search and is only registered with the
// admission filter; shapes whose enumeration exceeds the per-entry
// bound publish a negative entry and keep answering uncached. Cache
// timing rides the query trace sample: untraced queries never read the
// clock here.
//
//sfc:hotpath
func (c *decompCache) search(curve sfc.Curve, k, maxCubes int, sc *queryScratch, probe probeFn, region geom.Extremal, eps float64, stats *Stats, tr *obs.QueryTrace) (uint64, bool, error) {
	h := entryHash(region.Len, eps, maxCubes)
	if e := c.get(h, region.Len, eps, maxCubes); e != nil {
		c.hits.Add(1)
		if e.tooBig {
			// Negative entry: this region's decomposition is memoized as
			// too large to cache, so go straight to the uncached search
			// without re-enumerating.
			if eps == 0 {
				return searchExhaustive(curve, k, sc, probe, region, stats, tr)
			}
			return searchApprox(curve, k, maxCubes, sc, probe, region, eps, stats, tr)
		}
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		id, ok := e.replay(probe, region.Volume(), stats)
		if tr != nil {
			tr.AddStage("cache_replay", time.Since(t0), stats.RunsProbed)
		}
		if e.partial && !ok {
			// The recorded prefix ended at a hit that has since
			// disappeared. Rerun the full search from clean Stats — the
			// answer and Stats must match the uncached index exactly —
			// and upgrade the entry with the fresh recording.
			aspect := stats.AspectRatio
			*stats = Stats{AspectRatio: aspect}
			id, ok, ne, err := searchApproxRecord(curve, k, maxCubes, sc, probe, region, eps, stats, tr)
			if err != nil {
				return 0, false, err
			}
			c.put(h, ne)
			return id, ok, nil
		}
		return id, ok, nil
	}
	c.misses.Add(1)
	if !c.admit(h) {
		// First sighting of this shape: answer with the uncached search
		// and only note the shape. The recording waits for a second
		// occurrence to prove the shape recurs.
		if eps == 0 {
			return searchExhaustive(curve, k, sc, probe, region, stats, tr)
		}
		return searchApprox(curve, k, maxCubes, sc, probe, region, eps, stats, tr)
	}
	if eps == 0 {
		// Exhaustive searches decompose the whole region before probing
		// either way, so build-then-replay costs what the uncached search
		// costs plus one copy.
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		e, cacheable, err := buildExhaustiveEntry(curve, k, maxCubes, sc, region)
		if err != nil {
			return 0, false, err
		}
		if tr != nil {
			tr.AddStage("cache_build", time.Since(t0), len(e.ranges))
		}
		if cacheable {
			c.put(h, e)
		}
		var pt time.Time
		if tr != nil {
			pt = time.Now()
		}
		id, ok := e.replay(probe, region.Volume(), stats)
		if tr != nil {
			tr.AddStage("probes", time.Since(pt), stats.RunsProbed)
		}
		return id, ok, nil
	}
	id, ok, e, err := searchApproxRecord(curve, k, maxCubes, sc, probe, region, eps, stats, tr)
	if err != nil {
		return 0, false, err
	}
	c.put(h, e)
	return id, ok, nil
}

// buildExhaustiveEntry runs the decomposition side of an exhaustive
// search — no probing — and packages the merged runs for replay. The
// returned entry is always usable for the current query; cacheable
// reports whether it stayed within the per-entry bound and may be
// published.
func buildExhaustiveEntry(curve sfc.Curve, k, maxCubes int, sc *queryScratch, region geom.Extremal) (*cacheEntry, bool, error) {
	e := &cacheEntry{
		lens:     append([]uint64(nil), region.Len...),
		eps:      0,
		maxCubes: maxCubes,
	}
	partition, err := sc.dec.Decompose(sc.rect(region), k)
	if err != nil {
		return nil, false, err
	}
	runs := sc.dec.Runs(curve, partition)
	e.exhaustive = true
	e.nCubes = len(partition)
	e.finalLen = e.lens
	cacheable := len(runs) <= cacheBuildMaxCubes
	if cacheable {
		e.ranges = append([]sfc.KeyRange(nil), runs...)
	} else {
		// Too large to publish: alias the scratch runs for this one
		// replay and discard the entry.
		e.ranges = runs
	}
	return e, cacheable, nil
}

// searchApproxRecord is searchApprox with recording: it runs the
// identical interleaved truncate-enumerate-probe loop — same probes,
// same stopping conditions, bit-identical Stats — while packaging the
// enumerated prefix into a cache entry. A search that ends at a probe
// hit yields a partial entry (the prefix up to and including the hit
// cube); one that stops at the cap, the volume target or the last level
// yields a complete entry; a prefix that outgrows cacheBuildMaxCubes
// yields a negative (tooBig) entry, and the search simply keeps going
// uncached. The returned entry is non-nil whenever err is nil.
//
//sfc:hotpath
func searchApproxRecord(curve sfc.Curve, k, maxCubes int, sc *queryScratch, probe probeFn, region geom.Extremal, eps float64, stats *Stats, tr *obs.QueryTrace) (uint64, bool, *cacheEntry, error) {
	fullVol := region.Volume()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	target, m, err := cubes.TruncateExtremal(region, eps)
	if err != nil {
		return 0, false, nil, err
	}
	e := &cacheEntry{
		lens:     append([]uint64(nil), region.Len...),
		eps:      eps,
		maxCubes: maxCubes,
		m:        m,
	}
	negative := func() *cacheEntry {
		return &cacheEntry{lens: e.lens, eps: eps, maxCubes: maxCubes, tooBig: true}
	}
	if tr != nil {
		tr.AddStage("truncate", time.Since(t0), m)
		pt := time.Now()
		defer func() { tr.AddStage("cache_build", time.Since(pt), stats.RunsProbed) }()
	}
	stats.M = m
	targetVol := (1 - eps) * fullVol

	var (
		foundID  uint64
		searched float64 // volume probed so far
		capped   bool
		overflow bool
	)
	for level := k; level >= 0; level-- {
		err := sc.enum.Visit(target, level, func(corner []uint32, side uint64) bool {
			stats.CubesGenerated++
			stats.RunsProbed++
			cubeVol := 1.0
			for range corner {
				cubeVol *= float64(side)
			}
			searched += cubeVol
			r := sfc.CubeRange(curve, corner, side)
			if !overflow {
				if len(e.ranges) >= cacheBuildMaxCubes {
					overflow = true
				} else {
					e.ranges = append(e.ranges, r)
					e.vols = append(e.vols, cubeVol)
				}
			}
			if id, ok := probe(r.Lo, r.Hi); ok {
				foundID = id
				stats.Found = true
				return false
			}
			if maxCubes > 0 && stats.CubesGenerated >= maxCubes {
				capped = true
				return false
			}
			return true
		})
		if err != nil {
			return 0, false, nil, err
		}
		stats.VolumeFraction = searched / fullVol
		if stats.Found {
			if overflow {
				return foundID, true, negative(), nil
			}
			e.partial = true
			return foundID, true, e, nil
		}
		if capped {
			if level < k {
				stats.SearchedLen = bits.SVec(target.Len, level+1)
			}
			if overflow {
				return 0, false, negative(), nil
			}
			e.finalLen = stats.SearchedLen
			return 0, false, e, nil
		}
		// Level complete: the searched prefix tiles R(S_level(ℓ'))
		// (Lemma 3.4). Stop at the boundary once the volume target is met.
		stats.SearchedLen = bits.SVec(target.Len, level)
		if !overflow {
			e.marks = append(e.marks, levelMark{cubeCount: len(e.ranges), lens: stats.SearchedLen})
		}
		if searched >= targetVol {
			if overflow {
				return 0, false, negative(), nil
			}
			e.finalLen = e.marks[len(e.marks)-1].lens
			return 0, false, e, nil
		}
	}
	// Ran through every level: the whole truncated region was searched.
	stats.SearchedLen = append([]uint64(nil), target.Len...)
	if overflow {
		return 0, false, negative(), nil
	}
	e.finalLen = stats.SearchedLen
	return 0, false, e, nil
}

// replay probes a memoized decomposition in order, reproducing exactly
// the Stats the interleaved search would report: cube and probe counts
// accumulate per range, the searched-volume fraction per cube, and
// SearchedLen advances at the recorded level-completion marks. The
// SearchedLen slices are shared from the entry — read-only by the Stats
// contract — so a hit allocates nothing.
//
//sfc:hotpath
func (e *cacheEntry) replay(probe probeFn, fullVol float64, stats *Stats) (uint64, bool) {
	if e.exhaustive {
		stats.CubesGenerated = e.nCubes
		stats.VolumeFraction = 1
		stats.SearchedLen = e.finalLen
		for _, r := range e.ranges {
			stats.RunsProbed++
			if id, ok := probe(r.Lo, r.Hi); ok {
				stats.Found = true
				return id, true
			}
		}
		return 0, false
	}
	stats.M = e.m
	searched := 0.0
	mark := 0
	for i, r := range e.ranges {
		for mark < len(e.marks) && e.marks[mark].cubeCount == i {
			stats.SearchedLen = e.marks[mark].lens
			mark++
		}
		stats.CubesGenerated++
		stats.RunsProbed++
		searched += e.vols[i]
		if id, ok := probe(r.Lo, r.Hi); ok {
			stats.Found = true
			stats.VolumeFraction = searched / fullVol
			return id, true
		}
	}
	stats.VolumeFraction = searched / fullVol
	stats.SearchedLen = e.finalLen
	return 0, false
}
