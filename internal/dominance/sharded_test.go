package dominance

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sfccover/internal/bits"
)

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(Config{Dims: 2, Bits: 6}, 0); err == nil {
		t.Error("0 shards must fail")
	}
	if _, err := NewSharded(Config{Dims: 0, Bits: 6}, 4); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := NewSharded(Config{Dims: 1, Bits: 2}, 8); err == nil {
		t.Error("more shards than key-prefix slices must fail")
	}
	if _, err := NewSharded(Config{Dims: 2, Bits: 6}, 4); err != nil {
		t.Errorf("defaults should work: %v", err)
	}
}

// TestShardedParity: over the same point set, the sharded index probes the
// same cube sequence as the single-array index, so found/not-found, cube
// and run counts must agree exactly — exhaustive and approximate, at every
// shard count, on every curve.
func TestShardedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, curve := range []string{"z", "hilbert", "gray"} {
		cfg := Config{Dims: 3, Bits: 6, Curve: curve, MaxCubes: 5000}
		single := MustIndex(cfg)
		sharded := make([]*ShardedIndex, 0, 3)
		for _, n := range []int{1, 4, 16} {
			x, err := NewSharded(cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			sharded = append(sharded, x)
		}
		pts := randomPoints(rng, 2000, 3, 6)
		for i, p := range pts {
			single.Insert(p, uint64(i))
			for _, x := range sharded {
				x.Insert(p, uint64(i))
			}
		}
		for _, eps := range []float64{0, 0.3} {
			for qi := 0; qi < 200; qi++ {
				q := randomPoints(rng, 1, 3, 6)[0]
				_, wantOK, wantStats, err := single.Query(q, eps)
				if err != nil {
					t.Fatal(err)
				}
				for _, x := range sharded {
					_, gotOK, gotStats, err := x.Query(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					if gotOK != wantOK {
						t.Fatalf("curve %s eps %v shards %d query %d: found=%v, single index found=%v",
							curve, eps, x.NumShards(), qi, gotOK, wantOK)
					}
					if gotStats.CubesGenerated != wantStats.CubesGenerated ||
						gotStats.RunsProbed != wantStats.RunsProbed {
						t.Fatalf("curve %s eps %v shards %d query %d: stats (%d cubes, %d runs) != single (%d cubes, %d runs)",
							curve, eps, x.NumShards(), qi,
							gotStats.CubesGenerated, gotStats.RunsProbed,
							wantStats.CubesGenerated, wantStats.RunsProbed)
					}
				}
			}
		}
	}
}

func TestShardedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	x, err := NewSharded(Config{Dims: 4, Bits: 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	pts := randomPoints(rng, 500, 4, 8)
	for i, p := range pts {
		x.Insert(p, uint64(i))
	}
	if x.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", x.Len(), len(pts))
	}
	total := 0
	for _, n := range x.ShardSizes() {
		total += n
	}
	if total != len(pts) {
		t.Fatalf("ShardSizes sum = %d, want %d", total, len(pts))
	}
	for i, p := range pts {
		if !x.Delete(p, uint64(i)) {
			t.Fatalf("Delete(%d) found nothing", i)
		}
		if x.Delete(p, uint64(i)) {
			t.Fatalf("double Delete(%d) succeeded", i)
		}
	}
	if x.Len() != 0 {
		t.Fatalf("Len after deletion = %d", x.Len())
	}
}

func TestShardedQueryValidation(t *testing.T) {
	x, err := NewSharded(Config{Dims: 2, Bits: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := x.Query([]uint32{1}, 0); err == nil {
		t.Error("wrong query dims must fail")
	}
	if _, _, _, err := x.Query([]uint32{1, 1}, 1.0); err == nil {
		t.Error("eps=1 must fail")
	}
}

// TestShardedInitialBoundaries pins the initial layout: routing through
// the boundary table must match the historical uniform prefix arithmetic
// top*n >> prefixBits, so seeds and co-partitioned stores stay stable.
func TestShardedInitialBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 3, 4, 16} {
		cfg := Config{Dims: 3, Bits: 6}
		x, err := NewSharded(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(x.Boundaries()); got != n {
			t.Fatalf("n=%d: %d boundaries", n, got)
		}
		keyLen := cfg.Dims * cfg.Bits
		p := PrefixBits(keyLen)
		for _, pt := range randomPoints(rng, 300, 3, 6) {
			top, _ := x.curve.Key(pt).ShrN(keyLen - p).Uint64()
			want := int(top * uint64(n) >> uint(p))
			if got := x.ShardFor(pt); got != want {
				t.Fatalf("n=%d: ShardFor = %d, want prefix-arithmetic %d", n, got, want)
			}
		}
	}
}

// TestEqualizePairMigration loads one slice far heavier than the rest,
// equalizes, and checks that no entry is lost, every entry remains
// deletable (deletes route by the NEW boundaries), and queries answer
// exactly as an unsharded oracle before and after each move.
func TestEqualizePairMigration(t *testing.T) {
	cfg := Config{Dims: 2, Bits: 8}
	x, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	oracle := MustIndex(cfg)
	rng := rand.New(rand.NewSource(72))
	// A tight cluster near the origin lands in one curve-prefix slice.
	pts := make([][]uint32, 0, 1200)
	for i := 0; i < 1000; i++ {
		pts = append(pts, []uint32{uint32(rng.Intn(16)), uint32(rng.Intn(16))})
	}
	for i := 0; i < 200; i++ {
		pts = append(pts, []uint32{uint32(rng.Intn(256)), uint32(rng.Intn(256))})
	}
	for i, p := range pts {
		x.Insert(p, uint64(i))
		oracle.Insert(p, uint64(i))
	}
	check := func(stage string) {
		t.Helper()
		if x.Len() != len(pts) {
			t.Fatalf("%s: Len = %d, want %d", stage, x.Len(), len(pts))
		}
		for qi := 0; qi < 120; qi++ {
			q := randomPoints(rng, 1, 2, 8)[0]
			_, wantOK, _, _ := oracle.Query(q, 0)
			_, gotOK, _, err := x.Query(q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK {
				t.Fatalf("%s: query %d found=%v, oracle found=%v", stage, qi, gotOK, wantOK)
			}
		}
	}
	check("before")
	// Adjacent equalization diffuses load one neighbor at a time; sweep
	// until quiescent, checking answers after every sweep.
	totalMigrated := 0
	for sweep := 0; sweep < 12; sweep++ {
		moved := 0
		for pair := 0; pair < 3; pair++ {
			moved += x.EqualizePair(pair)
		}
		totalMigrated += moved
		check(fmt.Sprintf("after sweep %d", sweep))
		if moved == 0 {
			break
		}
	}
	if totalMigrated == 0 {
		t.Fatal("clustered load migrated nothing")
	}
	sizes := x.ShardSizes()
	max, min := sizes[0], sizes[0]
	for _, n := range sizes {
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if max > 3*(min+1) {
		t.Fatalf("sizes still badly skewed after equalization: %v", sizes)
	}
	// Every entry must remain deletable wherever it migrated to.
	for i, p := range pts {
		if !x.Delete(p, uint64(i)) {
			t.Fatalf("entry %d lost after migration", i)
		}
	}
	if x.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", x.Len())
	}
}

// TestEqualizePairDegenerate: an all-one-key pair cannot split, and
// out-of-range pairs are rejected quietly.
func TestEqualizePairDegenerate(t *testing.T) {
	x, err := NewSharded(Config{Dims: 2, Bits: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x.EqualizePair(-1) != 0 || x.EqualizePair(1) != 0 {
		t.Fatal("out-of-range pair must not migrate")
	}
	if x.EqualizePair(0) != 0 {
		t.Fatal("empty pair must not migrate")
	}
	p := []uint32{1, 1}
	for i := 0; i < 50; i++ {
		x.Insert(p, uint64(i))
	}
	if x.EqualizePair(0) != 0 {
		t.Fatal("a single-key population must never split across a boundary")
	}
	if x.Len() != 50 {
		t.Fatalf("Len = %d after degenerate equalize", x.Len())
	}
}

// TestSplitPoint pins the split chooser directly: candidates on BOTH
// sides of the middle must be weighed (an inadmissible or non-improving
// candidate below the middle must not mask a strictly improving one
// above it), equal-key runs never split, and no-improvement pairs
// report -1.
func TestSplitPoint(t *testing.T) {
	k := func(vs ...uint64) []bits.Key {
		out := make([]bits.Key, len(vs))
		for i, v := range vs {
			out[i] = bits.KeyFromUint64(v)
		}
		return out
	}
	cases := []struct {
		name string
		keys []bits.Key
		na   int
		want int
	}{
		// The middle (s=2) splits the 2,2 run; s=1 does not improve on
		// |2*4-5|=3, but s=3 (imbalance 1) does — it must be found.
		{"blocked-middle-right-wins", k(1, 2, 2, 3, 4), 4, 3},
		{"blocked-middle-left-wins", k(1, 3, 3, 3, 4), 0, 1},
		{"clean-median", k(1, 2, 3, 4), 4, 2},
		{"already-even", k(1, 2, 3, 4), 2, -1},
		{"single-key-run", k(7, 7, 7, 7), 4, -1},
		{"off-by-one-cannot-improve", k(1, 2, 3, 4, 5), 3, -1},
	}
	for _, tc := range cases {
		if got := splitPoint(tc.keys, tc.na); got != tc.want {
			t.Errorf("%s: splitPoint = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestShardedConcurrentMigration hammers queries, inserts and deletes
// while boundaries move; meaningful under -race. Queries run in exact
// mode against a stable planted population, so every answer is checkable
// mid-migration.
func TestShardedConcurrentMigration(t *testing.T) {
	cfg := Config{Dims: 2, Bits: 8, MaxCubes: 2000}
	x, err := NewSharded(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	// Stable planted points: never deleted, so a query dominated by one
	// must find SOMETHING at every instant of the churn below.
	planted := make([][]uint32, 400)
	for i := range planted {
		planted[i] = []uint32{uint32(rng.Intn(32)), uint32(rng.Intn(32))}
	}
	for i, p := range planted {
		x.Insert(p, uint64(i))
	}
	stop := make(chan struct{})
	moverDone := make(chan struct{})
	go func() { // boundary mover
		defer close(moverDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				x.EqualizePair(i % (x.NumShards() - 1))
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(80 + g)))
			base := uint64(10_000 * (g + 1))
			for i := 0; i < 300; i++ {
				p := []uint32{uint32(rng.Intn(256)), uint32(rng.Intn(256))}
				x.Insert(p, base+uint64(i))
				// A query at the origin is dominated by every planted
				// point; exact search must find one mid-migration.
				if _, ok, _, err := x.Query([]uint32{0, 0}, 0); err != nil || !ok {
					t.Errorf("goroutine %d op %d: origin query = (%v, %v), want a hit", g, i, ok, err)
					return
				}
				if !x.Delete(p, base+uint64(i)) {
					t.Errorf("goroutine %d op %d: delete of fresh insert failed", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-moverDone
	if x.Len() != len(planted) {
		t.Fatalf("Len = %d after churn, want %d", x.Len(), len(planted))
	}
}

// TestShardedConcurrent interleaves inserts, deletes and queries from many
// goroutines; meaningful under -race.
func TestShardedConcurrent(t *testing.T) {
	x, err := NewSharded(Config{Dims: 4, Bits: 8, MaxCubes: 500}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(64 + g)))
			pts := randomPoints(rng, 200, 4, 8)
			for i, p := range pts {
				x.Insert(p, uint64(g*1000+i))
			}
			for i := 0; i < 100; i++ {
				q := randomPoints(rng, 1, 4, 8)[0]
				if _, _, _, err := x.Query(q, 0.4); err != nil {
					t.Error(err)
					return
				}
			}
			for i, p := range pts {
				if !x.Delete(p, uint64(g*1000+i)) {
					t.Errorf("goroutine %d: delete %d failed", g, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if x.Len() != 0 {
		t.Fatalf("Len after concurrent churn = %d", x.Len())
	}
}
