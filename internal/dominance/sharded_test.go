package dominance

import (
	"math/rand"
	"sync"
	"testing"
)

func TestNewShardedValidation(t *testing.T) {
	if _, err := NewSharded(Config{Dims: 2, Bits: 6}, 0); err == nil {
		t.Error("0 shards must fail")
	}
	if _, err := NewSharded(Config{Dims: 0, Bits: 6}, 4); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := NewSharded(Config{Dims: 1, Bits: 2}, 8); err == nil {
		t.Error("more shards than key-prefix slices must fail")
	}
	if _, err := NewSharded(Config{Dims: 2, Bits: 6}, 4); err != nil {
		t.Errorf("defaults should work: %v", err)
	}
}

// TestShardedParity: over the same point set, the sharded index probes the
// same cube sequence as the single-array index, so found/not-found, cube
// and run counts must agree exactly — exhaustive and approximate, at every
// shard count, on every curve.
func TestShardedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, curve := range []string{"z", "hilbert", "gray"} {
		cfg := Config{Dims: 3, Bits: 6, Curve: curve, MaxCubes: 5000}
		single := MustIndex(cfg)
		sharded := make([]*ShardedIndex, 0, 3)
		for _, n := range []int{1, 4, 16} {
			x, err := NewSharded(cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			sharded = append(sharded, x)
		}
		pts := randomPoints(rng, 2000, 3, 6)
		for i, p := range pts {
			single.Insert(p, uint64(i))
			for _, x := range sharded {
				x.Insert(p, uint64(i))
			}
		}
		for _, eps := range []float64{0, 0.3} {
			for qi := 0; qi < 200; qi++ {
				q := randomPoints(rng, 1, 3, 6)[0]
				_, wantOK, wantStats, err := single.Query(q, eps)
				if err != nil {
					t.Fatal(err)
				}
				for _, x := range sharded {
					_, gotOK, gotStats, err := x.Query(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					if gotOK != wantOK {
						t.Fatalf("curve %s eps %v shards %d query %d: found=%v, single index found=%v",
							curve, eps, x.NumShards(), qi, gotOK, wantOK)
					}
					if gotStats.CubesGenerated != wantStats.CubesGenerated ||
						gotStats.RunsProbed != wantStats.RunsProbed {
						t.Fatalf("curve %s eps %v shards %d query %d: stats (%d cubes, %d runs) != single (%d cubes, %d runs)",
							curve, eps, x.NumShards(), qi,
							gotStats.CubesGenerated, gotStats.RunsProbed,
							wantStats.CubesGenerated, wantStats.RunsProbed)
					}
				}
			}
		}
	}
}

func TestShardedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	x, err := NewSharded(Config{Dims: 4, Bits: 8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	pts := randomPoints(rng, 500, 4, 8)
	for i, p := range pts {
		x.Insert(p, uint64(i))
	}
	if x.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", x.Len(), len(pts))
	}
	total := 0
	for _, n := range x.ShardSizes() {
		total += n
	}
	if total != len(pts) {
		t.Fatalf("ShardSizes sum = %d, want %d", total, len(pts))
	}
	for i, p := range pts {
		if !x.Delete(p, uint64(i)) {
			t.Fatalf("Delete(%d) found nothing", i)
		}
		if x.Delete(p, uint64(i)) {
			t.Fatalf("double Delete(%d) succeeded", i)
		}
	}
	if x.Len() != 0 {
		t.Fatalf("Len after deletion = %d", x.Len())
	}
}

func TestShardedQueryValidation(t *testing.T) {
	x, err := NewSharded(Config{Dims: 2, Bits: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := x.Query([]uint32{1}, 0); err == nil {
		t.Error("wrong query dims must fail")
	}
	if _, _, _, err := x.Query([]uint32{1, 1}, 1.0); err == nil {
		t.Error("eps=1 must fail")
	}
}

// TestShardedConcurrent interleaves inserts, deletes and queries from many
// goroutines; meaningful under -race.
func TestShardedConcurrent(t *testing.T) {
	x, err := NewSharded(Config{Dims: 4, Bits: 8, MaxCubes: 500}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(64 + g)))
			pts := randomPoints(rng, 200, 4, 8)
			for i, p := range pts {
				x.Insert(p, uint64(g*1000+i))
			}
			for i := 0; i < 100; i++ {
				q := randomPoints(rng, 1, 4, 8)[0]
				if _, _, _, err := x.Query(q, 0.4); err != nil {
					t.Error(err)
					return
				}
			}
			for i, p := range pts {
				if !x.Delete(p, uint64(g*1000+i)) {
					t.Errorf("goroutine %d: delete %d failed", g, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if x.Len() != 0 {
		t.Fatalf("Len after concurrent churn = %d", x.Len())
	}
}
