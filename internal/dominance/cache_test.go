package dominance

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sfccover/internal/cubes"
	"sfccover/internal/geom"
)

// TestCacheBitIdentical is the cache's core contract: a cached index
// answers every query — id, found, and the full Stats record — bit-
// identically to an uncached one, on the first-touch pass (uncached
// fallback behind the admission filter), the build pass (build-then-
// replay) and the hit pass (pure replay), across curves, ε budgets and
// cube caps.
func TestCacheBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	configs := []Config{
		{Dims: 2, Bits: 6, Curve: "z"},
		{Dims: 2, Bits: 6, Curve: "hilbert", MaxCubes: 8},
		{Dims: 3, Bits: 5, Curve: "gray", MaxCubes: 64},
		{Dims: 3, Bits: 5, Curve: "onion"},
		{Dims: 2, Bits: 8, Curve: "onion", MaxCubes: 16},
	}
	epsilons := []float64{0, 0.05, 0.3, 0.6}
	for _, cfg := range configs {
		cfg.Seed = 7
		cached := MustIndex(cfg)
		plainCfg := cfg
		plainCfg.CacheSize = -1
		plain := MustIndex(plainCfg)
		for i, p := range randomPoints(rng, 200, cfg.Dims, cfg.Bits) {
			cached.Insert(p, uint64(i))
			plain.Insert(p, uint64(i))
		}
		queries := randomPoints(rng, 80, cfg.Dims, cfg.Bits)
		for pass := 0; pass < 3; pass++ {
			for qi, q := range queries {
				eps := epsilons[qi%len(epsilons)]
				id1, ok1, st1, err1 := cached.Query(q, eps)
				id2, ok2, st2, err2 := plain.Query(q, eps)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s pass %d: error mismatch: %v vs %v", cfg.Curve, pass, err1, err2)
				}
				if id1 != id2 || ok1 != ok2 {
					t.Fatalf("%s pass %d q=%v eps=%g: answer mismatch: (%d,%v) vs (%d,%v)",
						cfg.Curve, pass, q, eps, id1, ok1, id2, ok2)
				}
				if !reflect.DeepEqual(st1, st2) {
					t.Fatalf("%s pass %d q=%v eps=%g: stats mismatch:\ncached:   %+v\nuncached: %+v",
						cfg.Curve, pass, q, eps, st1, st2)
				}
			}
		}
		hits, misses := cached.CacheStats()
		if hits == 0 || misses == 0 {
			t.Errorf("%s: expected both hits and misses, got hits=%d misses=%d", cfg.Curve, hits, misses)
		}
	}
}

// TestCacheAgreesWithOracle cross-checks the cached exhaustive search
// against the Linear oracle on both the miss and hit pass.
func TestCacheAgreesWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	cfg := Config{Dims: 2, Bits: 6, Seed: 3}
	idx := MustIndex(cfg)
	oracle := NewLinear()
	pts := randomPoints(rng, 300, cfg.Dims, cfg.Bits)
	for i, p := range pts {
		idx.Insert(p, uint64(i))
		oracle.Insert(p, uint64(i))
	}
	for _, q := range randomPoints(rng, 200, cfg.Dims, cfg.Bits) {
		// Three rounds: register with the admission filter, build, hit.
		for pass := 0; pass < 3; pass++ {
			_, ok := idx.QueryDominating(q)
			_, want := oracle.QueryDominating(q)
			if ok != want {
				t.Fatalf("pass %d q=%v: cached exhaustive=%v oracle=%v", pass, q, ok, want)
			}
		}
	}
}

// TestCacheCounters checks the hit/miss accounting under two-touch
// admission: the first occurrence registers (miss), the second builds
// (miss), the third and later replay (hit).
func TestCacheCounters(t *testing.T) {
	idx := MustIndex(Config{Dims: 2, Bits: 6})
	qs := [][]uint32{{1, 2}, {3, 4}, {5, 6}}
	for _, q := range qs {
		idx.Query(q, 0.25)
	}
	if h, m := idx.CacheStats(); h != 0 || m != 3 {
		t.Fatalf("after distinct queries: hits=%d misses=%d, want 0/3", h, m)
	}
	for _, q := range qs {
		idx.Query(q, 0.25)
	}
	if h, m := idx.CacheStats(); h != 0 || m != 6 {
		t.Fatalf("after the build pass: hits=%d misses=%d, want 0/6", h, m)
	}
	for _, q := range qs {
		idx.Query(q, 0.25)
	}
	if h, m := idx.CacheStats(); h != 3 || m != 6 {
		t.Fatalf("after repeats: hits=%d misses=%d, want 3/6", h, m)
	}
	// A different ε is a different budget, hence a different entry.
	idx.Query(qs[0], 0.5)
	if h, m := idx.CacheStats(); h != 3 || m != 7 {
		t.Fatalf("after new eps: hits=%d misses=%d, want 3/7", h, m)
	}
	// Distinct query points with identical region lens share an entry:
	// the key is the region geometry, not the point.
	idx2 := MustIndex(Config{Dims: 2, Bits: 6})
	idx2.Query([]uint32{1, 5}, 0.25)
	idx2.Query([]uint32{1, 5}, 0.25)
	idx2.Query([]uint32{1, 5}, 0.25)
	if h, _ := idx2.CacheStats(); h != 1 {
		t.Fatalf("identical region should hit on the third touch, hits=%d", h)
	}
}

// TestCacheDisabled verifies CacheSize < 0 turns the cache off.
func TestCacheDisabled(t *testing.T) {
	idx := MustIndex(Config{Dims: 2, Bits: 6, CacheSize: -1})
	if idx.cache != nil {
		t.Fatal("negative CacheSize must disable the cache")
	}
	idx.Query([]uint32{1, 2}, 0.25)
	if h, m := idx.CacheStats(); h != 0 || m != 0 {
		t.Fatalf("disabled cache reported hits=%d misses=%d", h, m)
	}
}

// TestCacheEvictionBound fills the cache well past its configured size
// and checks the live entry count respects the bound.
func TestCacheEvictionBound(t *testing.T) {
	idx := MustIndex(Config{Dims: 2, Bits: 8, CacheSize: 32})
	rng := rand.New(rand.NewSource(17))
	// Two passes per query so each shape clears the admission filter and
	// actually builds an entry.
	qs := randomPoints(rng, 500, 2, 8)
	for pass := 0; pass < 2; pass++ {
		for _, q := range qs {
			idx.Query(q, 0.25)
		}
	}
	if n := idx.cache.len(); n > 32 {
		t.Fatalf("cache holds %d entries, bound is 32", n)
	}
	// And it still answers correctly after heavy eviction.
	oracle := NewLinear()
	pts := randomPoints(rng, 100, 2, 8)
	for i, p := range pts {
		idx.Insert(p, uint64(i))
		oracle.Insert(p, uint64(i))
	}
	for _, q := range randomPoints(rng, 100, 2, 8) {
		_, ok := idx.QueryDominating(q)
		_, want := oracle.QueryDominating(q)
		if ok != want {
			t.Fatalf("post-eviction q=%v: got %v want %v", q, ok, want)
		}
	}
}

// TestCacheOverflowFallback drives a missing query whose enumeration
// prefix exceeds the per-entry bound: the recording search must answer
// exactly like an uncached index and publish only the negative entry,
// which repeats then answer through — uncached, but without another
// recording attempt. The indexes stay empty so the search runs the
// whole region-determined prefix instead of stopping at a hit.
func TestCacheOverflowFallback(t *testing.T) {
	const d, k = 3, 8
	q := []uint32{1, 1, 1}
	region := geom.QueryRegion(q, k)
	partition, err := cubes.Decompose(region.Rect(), k)
	if err != nil {
		t.Fatal(err)
	}
	if len(partition) <= cacheBuildMaxCubes {
		t.Skipf("partition has only %d cubes, need > %d to overflow", len(partition), cacheBuildMaxCubes)
	}
	cfg := Config{Dims: d, Bits: k, Seed: 5}
	cached := MustIndex(cfg)
	plainCfg := cfg
	plainCfg.CacheSize = -1
	plain := MustIndex(plainCfg)
	// Touch 1 registers the shape, touch 2 records (and overflows into
	// the negative entry), touch 3 hits the negative entry. Every touch
	// must agree with the uncached index bit for bit.
	for touch := 1; touch <= 3; touch++ {
		id1, ok1, st1, err1 := cached.Query(q, 0.01)
		id2, ok2, st2, err2 := plain.Query(q, 0.01)
		if err1 != nil || err2 != nil {
			t.Fatalf("touch %d errors: %v %v", touch, err1, err2)
		}
		if id1 != id2 || ok1 != ok2 || !reflect.DeepEqual(st1, st2) {
			t.Fatalf("touch %d diverged:\ncached:   (%d,%v) %+v\nuncached: (%d,%v) %+v", touch, id1, ok1, st1, id2, ok2, st2)
		}
		wantLen := 1
		if touch == 1 {
			wantLen = 0 // admission filter only; nothing published yet
		}
		if n := cached.cache.len(); n != wantLen {
			t.Fatalf("touch %d: %d live entries, want %d (the negative entry only)", touch, n, wantLen)
		}
	}
	hits, misses := cached.CacheStats()
	if hits != 1 || misses != 2 {
		t.Fatalf("want 1 hit (the negative-entry repeat) and 2 misses (register, build), have %d/%d", hits, misses)
	}
}

// TestCacheShardedConcurrent exercises the shared cache from concurrent
// queriers on a ShardedIndex (meaningful under -race) and checks every
// answer against the Linear oracle.
func TestCacheShardedConcurrent(t *testing.T) {
	cfg := Config{Dims: 2, Bits: 6, Seed: 11}
	x, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewLinear()
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 400, 2, 6)
	for i, p := range pts {
		x.Insert(p, uint64(i))
		oracle.Insert(p, uint64(i))
	}
	queries := randomPoints(rng, 64, 2, 6)
	want := make([]bool, len(queries))
	for i, q := range queries {
		_, want[i] = oracle.QueryDominating(q)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for i, q := range queries {
					_, ok, _, qerr := x.Query(q, 0)
					if qerr != nil {
						t.Errorf("goroutine %d q=%v: %v", g, q, qerr)
						return
					}
					if ok != want[i] {
						t.Errorf("goroutine %d q=%v: got %v want %v", g, q, ok, want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if h, _ := x.CacheStats(); h == 0 {
		t.Error("concurrent repeat workload produced no cache hits")
	}
}
