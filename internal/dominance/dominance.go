// Package dominance implements the paper's two query problems over a set
// of points in d-dimensional space:
//
//   - Problem 1 (Point Dominance): report any indexed point inside the
//     extremal region [x_1,∞] × ... × [x_d,∞].
//   - Problem 2 (ε-Approximate Point Dominance): search a subset of that
//     region covering at least a (1−ε) fraction of its volume and report a
//     point if the searched part contains one.
//
// The SFC-based Index follows Section 5: points live in an SFC array
// sorted by curve key; a query greedily partitions (a truncation of) the
// query region into standard cubes, largest first, and probes each cube's
// key range with one ordered-search until a point is found or the target
// volume has been covered.
//
// Linear and KDTree are the exact baselines used for correctness oracles
// and for the scaling experiments.
package dominance

import (
	"fmt"
	"sort"

	"sfccover/internal/bits"
	"sfccover/internal/obs"
	"sfccover/internal/sfc"
	"sfccover/internal/sfcarray"
)

// Searcher is the interface shared by the SFC index and the baselines.
type Searcher interface {
	// Insert indexes point p under the given id.
	Insert(p []uint32, id uint64)
	// Delete removes one (p, id) entry, reporting whether it existed.
	Delete(p []uint32, id uint64) bool
	// QueryDominating reports any indexed point that dominates q
	// (exhaustive semantics).
	QueryDominating(q []uint32) (id uint64, ok bool)
	// Len returns the number of indexed points.
	Len() int
}

// Stats describes the work one SFC query performed, in the units of the
// paper's cost model.
type Stats struct {
	// M is the truncation parameter used (0 for exhaustive queries).
	M int
	// CubesGenerated is how many standard cubes the decomposition emitted.
	CubesGenerated int
	// RunsProbed is the number of ordered-structure range probes issued —
	// the paper's unit of query cost.
	RunsProbed int
	// VolumeFraction is the fraction of the query region's volume that the
	// generated cubes cover (>= 1-ε for approximate queries that ran to
	// their target).
	VolumeFraction float64
	// AspectRatio is α = b(ℓ_max) − b(ℓ_min) of the query region.
	AspectRatio int
	// Found reports whether a dominating point was returned.
	Found bool
	// SearchedLen gives the side lengths of the extremal rectangle that was
	// fully searched before the search ended: every indexed point inside
	// R(SearchedLen) is guaranteed to have been considered. It is nil when
	// the search ended mid-level (success, or the MaxCubes cap) before
	// completing its first level. For exhaustive queries that find nothing
	// it is the whole query region.
	SearchedLen []uint64
}

// Config parameterizes an SFC dominance index.
type Config struct {
	// Dims is d, the dimensionality of indexed points.
	Dims int
	// Bits is k; coordinates range over [0, 2^k−1].
	Bits int
	// Curve selects the space filling curve: "z" (default), "hilbert",
	// "gray" or "onion".
	Curve string
	// Array selects the ordered structure: "treap" (default) or "skiplist".
	Array string
	// Seed drives the ordered structure's internal randomness.
	Seed int64
	// MaxCubes caps the cubes generated per query (0 = unlimited). When
	// the cap fires the search still probes the largest-volume prefix of
	// the partition, so it degrades to a coarser approximation; Stats
	// reports the volume actually covered.
	MaxCubes int
	// CacheSize bounds the decomposition cache in entries: 0 selects
	// DefaultCacheSize, negative disables the cache. Cache hits replay a
	// memoized probe order bit-identical to the uncached search, skipping
	// decomposition and run-merging.
	CacheSize int
	// Adaptive derives each query's effective ε and cube cap from
	// observed query statistics (aspect ratio, volume fraction, cube
	// counts) instead of the fixed Epsilon/MaxCubes; the configured
	// values become the floor (ε) and ceiling (cube cap). Soundness is
	// unaffected — only the searched volume fraction varies, and Stats
	// reports it.
	Adaptive bool
}

func (c Config) withDefaults() Config {
	if c.Curve == "" {
		c.Curve = "z"
	}
	if c.Array == "" {
		c.Array = "treap"
	}
	return c
}

// Index is the SFC-based dominance index of Section 5.
//
// Writes were never safe for concurrent use (the ordered structures are
// single-writer); queries now share per-index scratch buffers, so
// queries are single-goroutine too. Wrap an Index in a lock (as
// core.Detector does) or use ShardedIndex for concurrent querying.
type Index struct {
	cfg   Config
	curve sfc.Curve
	arr   sfcarray.Index
	// probeHist, when set via SetObserver, receives sampled run-probe
	// latencies.
	probeHist *obs.Histogram
	// rawProbe is the array's range probe bound once at construction:
	// binding it per query would allocate a method value on every call.
	rawProbe probeFn
	// scratch holds the query path's reusable buffers.
	scratch queryScratch
	// cache memoizes decompositions (nil when disabled).
	cache *decompCache
	// budget drives adaptive per-query budgets (nil unless enabled).
	budget *budgetState
}

// NewIndex builds an SFC dominance index.
func NewIndex(cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	curve, err := sfc.New(cfg.Curve, sfc.Config{Dims: cfg.Dims, Bits: cfg.Bits})
	if err != nil {
		return nil, fmt.Errorf("dominance: %w", err)
	}
	arr, err := sfcarray.New(cfg.Array, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("dominance: %w", err)
	}
	x := &Index{cfg: cfg, curve: curve, arr: arr}
	x.rawProbe = x.arr.FirstInRange
	if cfg.CacheSize >= 0 {
		x.cache = newDecompCache(cfg.CacheSize)
	}
	if cfg.Adaptive {
		x.budget = &budgetState{}
	}
	return x, nil
}

// CacheStats reports the decomposition cache's hit and miss counts
// (zeros when the cache is disabled).
func (x *Index) CacheStats() (hits, misses uint64) {
	if x.cache == nil {
		return 0, 0
	}
	return x.cache.hits.Load(), x.cache.misses.Load()
}

// MustIndex is NewIndex for known-good configurations.
func MustIndex(cfg Config) *Index {
	idx, err := NewIndex(cfg)
	if err != nil {
		panic(err)
	}
	return idx
}

var _ Searcher = (*Index)(nil)

// Len implements Searcher.
func (x *Index) Len() int { return x.arr.Len() }

// Insert implements Searcher.
func (x *Index) Insert(p []uint32, id uint64) {
	x.arr.Insert(x.curve.Key(p), id)
}

// Delete implements Searcher.
func (x *Index) Delete(p []uint32, id uint64) bool {
	return x.arr.Delete(x.curve.Key(p), id)
}

// BatchInserter is the optional bulk-load capability of a Searcher:
// implementations that can beat len(ps) independent Inserts (the SFC
// array's sorted-batch path) expose it, and batch write paths type-assert
// for it.
type BatchInserter interface {
	// InsertBatch indexes a group of points, aligned with ids.
	InsertBatch(ps [][]uint32, ids []uint64)
}

// InsertBatch implements BatchInserter: keys are computed and sorted once,
// then the whole batch enters the SFC array through its sorted bulk-load
// path — a bottom-up build on a cold array, a single merge pass on a warm
// one — instead of one O(log n) descent per point.
func (x *Index) InsertBatch(ps [][]uint32, ids []uint64) {
	keys := make([]bits.Key, len(ps))
	for i, p := range ps {
		keys[i] = x.curve.Key(p)
	}
	order := make([]int, len(ps))
	for i := range order {
		order[i] = i
	}
	x.arr.InsertSorted(sortedEntries(keys, ids, order))
}

// sortedEntries selects the (key, id) pairs named by order and returns
// them sorted by the SFC arrays' own comparator — the exact order their
// sorted bulk-load path requires. order is sorted in place as a side
// effect.
func sortedEntries(keys []bits.Key, ids []uint64, order []int) ([]bits.Key, []uint64) {
	sort.Slice(order, func(a, b int) bool {
		return sfcarray.EntryLess(keys[order[a]], ids[order[a]], keys[order[b]], ids[order[b]])
	})
	sk := make([]bits.Key, len(order))
	si := make([]uint64, len(order))
	for j, i := range order {
		sk[j], si[j] = keys[i], ids[i]
	}
	return sk, si
}

// QueryDominating implements Searcher with exhaustive semantics (ε = 0).
func (x *Index) QueryDominating(q []uint32) (uint64, bool) {
	id, ok, _, err := x.Query(q, 0)
	if err != nil {
		// Unreachable: ε=0 is always valid and q is in-universe by type.
		panic(err)
	}
	return id, ok
}

// Query is defined in traced.go: it delegates to QueryTraced with a
// nil trace record.
