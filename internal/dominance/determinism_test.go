package dominance

import (
	"math/rand"
	"testing"

	"sfccover/internal/geom"
)

// TestQueryDeterminism: identical configuration, inserts and queries must
// produce identical results and identical cost statistics.
func TestQueryDeterminism(t *testing.T) {
	build := func() *Index {
		idx := MustIndex(Config{Dims: 3, Bits: 8, Seed: 77})
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 300; i++ {
			p := []uint32{
				uint32(rng.Intn(256)), uint32(rng.Intn(256)), uint32(rng.Intn(256)),
			}
			idx.Insert(p, uint64(i))
		}
		return idx
	}
	a, b := build(), build()
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		q := []uint32{uint32(rng.Intn(256)), uint32(rng.Intn(256)), uint32(rng.Intn(256))}
		eps := []float64{0, 0.3, 0.05}[trial%3]
		idA, okA, stA, errA := a.Query(q, eps)
		idB, okB, stB, errB := b.Query(q, eps)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if idA != idB || okA != okB {
			t.Fatalf("results differ: (%d,%v) vs (%d,%v)", idA, okA, idB, okB)
		}
		if stA.RunsProbed != stB.RunsProbed || stA.CubesGenerated != stB.CubesGenerated ||
			stA.VolumeFraction != stB.VolumeFraction || stA.M != stB.M {
			t.Fatalf("stats differ: %+v vs %+v", stA, stB)
		}
	}
}

// TestStatsInvariants checks the structural relations the Stats contract
// promises.
func TestStatsInvariants(t *testing.T) {
	idx := MustIndex(Config{Dims: 3, Bits: 8})
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 200; i++ {
		p := []uint32{uint32(rng.Intn(256)), uint32(rng.Intn(256)), uint32(rng.Intn(256))}
		idx.Insert(p, uint64(i))
	}
	for trial := 0; trial < 200; trial++ {
		q := []uint32{uint32(rng.Intn(256)), uint32(rng.Intn(256)), uint32(rng.Intn(256))}
		_, found, st, err := idx.Query(q, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if st.RunsProbed > st.CubesGenerated {
			t.Fatalf("probed %d > generated %d", st.RunsProbed, st.CubesGenerated)
		}
		if st.VolumeFraction < 0 || st.VolumeFraction > 1+1e-9 {
			t.Fatalf("volume fraction %v out of range", st.VolumeFraction)
		}
		if found != st.Found {
			t.Fatal("Found flag inconsistent")
		}
		if !found {
			if st.VolumeFraction < 1-0.25 {
				t.Fatalf("miss searched only %v", st.VolumeFraction)
			}
			if st.RunsProbed != st.CubesGenerated {
				t.Fatal("miss must probe every generated cube")
			}
			if len(st.SearchedLen) == 0 {
				t.Fatal("miss must report its searched region")
			}
			region := geom.QueryRegion(q, 8)
			for i, l := range st.SearchedLen {
				if l > region.Len[i] {
					t.Fatalf("searched region exceeds query region on dim %d", i)
				}
			}
		}
		wantAlpha := geom.QueryRegion(q, 8).AspectRatio()
		if st.AspectRatio != wantAlpha {
			t.Fatalf("aspect ratio %d, want %d", st.AspectRatio, wantAlpha)
		}
	}
}

// TestArraysAgree runs the same queries against treap- and skiplist-backed
// indexes; results must be identical (the array is pure plumbing).
func TestArraysAgree(t *testing.T) {
	mk := func(array string) *Index {
		idx := MustIndex(Config{Dims: 2, Bits: 10, Array: array})
		rng := rand.New(rand.NewSource(45))
		for i := 0; i < 500; i++ {
			idx.Insert([]uint32{uint32(rng.Intn(1024)), uint32(rng.Intn(1024))}, uint64(i))
		}
		return idx
	}
	treap, sl := mk("treap"), mk("skiplist")
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 300; trial++ {
		q := []uint32{uint32(rng.Intn(1024)), uint32(rng.Intn(1024))}
		eps := []float64{0, 0.2}[trial%2]
		idT, okT, _, err := treap.Query(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		idS, okS, _, err := sl.Query(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if okT != okS || (okT && idT != idS) {
			t.Fatalf("arrays disagree: treap (%d,%v) skiplist (%d,%v)", idT, okT, idS, okS)
		}
	}
}
