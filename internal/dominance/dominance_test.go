package dominance

import (
	"math/rand"
	"testing"

	"sfccover/internal/cubes"
	"sfccover/internal/geom"
)

func randomPoints(rng *rand.Rand, n, d, k int) [][]uint32 {
	pts := make([][]uint32, n)
	for i := range pts {
		p := make([]uint32, d)
		for j := range p {
			p[j] = uint32(rng.Int63n(1 << uint(k)))
		}
		pts[i] = p
	}
	return pts
}

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex(Config{Dims: 0, Bits: 8}); err == nil {
		t.Error("dims=0 must fail")
	}
	if _, err := NewIndex(Config{Dims: 2, Bits: 40}); err == nil {
		t.Error("bits=40 must fail")
	}
	if _, err := NewIndex(Config{Dims: 2, Bits: 8, Curve: "peano"}); err == nil {
		t.Error("unknown curve must fail")
	}
	if _, err := NewIndex(Config{Dims: 2, Bits: 8, Array: "btree"}); err == nil {
		t.Error("unknown array must fail")
	}
	if _, err := NewIndex(Config{Dims: 4, Bits: 16}); err != nil {
		t.Errorf("defaults should work: %v", err)
	}
}

func TestQueryArgValidation(t *testing.T) {
	idx := MustIndex(Config{Dims: 2, Bits: 4})
	if _, _, _, err := idx.Query([]uint32{1}, 0); err == nil {
		t.Error("wrong query dims must fail")
	}
	if _, _, _, err := idx.Query([]uint32{1, 1}, -0.5); err == nil {
		t.Error("negative eps must fail")
	}
	if _, _, _, err := idx.Query([]uint32{1, 1}, 1.0); err == nil {
		t.Error("eps=1 must fail")
	}
}

func TestExhaustiveAgreesWithBaselines(t *testing.T) {
	// The exhaustive SFC query, the linear scan and the k-d tree must give
	// identical found/not-found answers, for every curve and array.
	rng := rand.New(rand.NewSource(61))
	configs := []Config{
		{Dims: 2, Bits: 6, Curve: "z", Array: "treap"},
		{Dims: 2, Bits: 6, Curve: "hilbert", Array: "skiplist"},
		{Dims: 2, Bits: 6, Curve: "gray", Array: "treap"},
		{Dims: 3, Bits: 4, Curve: "z", Array: "skiplist"},
		{Dims: 4, Bits: 3, Curve: "hilbert", Array: "treap"},
	}
	for _, cfg := range configs {
		idx := MustIndex(cfg)
		lin := NewLinear()
		kd := NewKDTree(cfg.Dims)
		pts := randomPoints(rng, 80, cfg.Dims, cfg.Bits)
		for i, p := range pts {
			idx.Insert(p, uint64(i))
			lin.Insert(p, uint64(i))
			kd.Insert(p, uint64(i))
		}
		for trial := 0; trial < 150; trial++ {
			q := randomPoints(rng, 1, cfg.Dims, cfg.Bits)[0]
			idSFC, okSFC := idx.QueryDominating(q)
			_, okLin := lin.QueryDominating(q)
			_, okKD := kd.QueryDominating(q)
			if okSFC != okLin || okLin != okKD {
				t.Fatalf("%s/%s q=%v: sfc=%v lin=%v kd=%v", cfg.Curve, cfg.Array, q, okSFC, okLin, okKD)
			}
			if okSFC && !geom.Dominates(pts[idSFC], q) {
				t.Fatalf("%s/%s: returned point %v does not dominate %v", cfg.Curve, cfg.Array, pts[idSFC], q)
			}
		}
	}
}

func TestApproximateNeverFalsePositive(t *testing.T) {
	// Any point the approximate query returns must genuinely dominate.
	rng := rand.New(rand.NewSource(71))
	idx := MustIndex(Config{Dims: 3, Bits: 8})
	pts := randomPoints(rng, 200, 3, 8)
	for i, p := range pts {
		idx.Insert(p, uint64(i))
	}
	for trial := 0; trial < 60; trial++ {
		q := randomPoints(rng, 1, 3, 8)[0]
		for _, eps := range []float64{0.3, 0.05} {
			id, found, stats, err := idx.Query(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if found && !geom.Dominates(pts[id], q) {
				t.Fatalf("eps=%v q=%v: false positive %v", eps, q, pts[id])
			}
			if found != stats.Found {
				t.Fatal("stats.Found disagrees with result")
			}
		}
	}
}

func TestApproximateCompleteWithinSearchedRegion(t *testing.T) {
	// Completeness contract: every indexed point inside R(SearchedLen) must
	// be found, and the searched region must meet the (1−ε) volume bound.
	rng := rand.New(rand.NewSource(83))
	const d, k = 3, 6
	idx := MustIndex(Config{Dims: d, Bits: k})
	pts := randomPoints(rng, 150, d, k)
	for i, p := range pts {
		idx.Insert(p, uint64(i))
	}
	for trial := 0; trial < 100; trial++ {
		q := randomPoints(rng, 1, d, k)[0]
		for _, eps := range []float64{0.4, 0.15, 0.05} {
			_, found, stats, err := idx.Query(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if found {
				continue
			}
			if stats.VolumeFraction < 1-eps {
				t.Fatalf("eps=%v: unsuccessful search covered only %v < %v",
					eps, stats.VolumeFraction, 1-eps)
			}
			searched := geom.MustExtremal(stats.SearchedLen, k).Rect()
			for _, p := range pts {
				if searched.Contains(p) {
					t.Fatalf("eps=%v q=%v: point %v inside searched region %v was missed",
						eps, q, p, stats.SearchedLen)
				}
			}
		}
	}
}

func TestSearchedRegionMatchesTruncationWhenComplete(t *testing.T) {
	// On an empty index with no early volume stop possible before the
	// truncated region is fully covered... the searched region must at
	// least contain R(t(ℓ, m)) truncated further by the volume stop; it is
	// always a sub-rectangle of the truncation and a superset of the query
	// anchor corner.
	const d, k = 2, 10
	idx := MustIndex(Config{Dims: d, Bits: k})
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		q := randomPoints(rng, 1, d, k)[0]
		eps := []float64{0.3, 0.1, 0.03}[trial%3]
		_, _, stats, err := idx.Query(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		region := geom.QueryRegion(q, k)
		tr, _, err := cubes.TruncateExtremal(region, eps)
		if err != nil {
			t.Fatal(err)
		}
		searched := geom.MustExtremal(stats.SearchedLen, k)
		if !tr.Rect().ContainsRect(searched.Rect()) {
			t.Fatalf("searched region %v escapes truncated region %v", stats.SearchedLen, tr.Len)
		}
		if searched.Volume()/region.Volume() < 1-eps {
			t.Fatalf("searched volume below contract: %v", stats.SearchedLen)
		}
		maxCorner := []uint32{1<<k - 1, 1<<k - 1}
		if !searched.Rect().Contains(maxCorner) {
			t.Fatal("searched region must contain the anchor corner")
		}
	}
}

func TestApproximateVolumeGuarantee(t *testing.T) {
	// For queries that find nothing, the searched volume fraction must meet
	// the (1-ε) contract and M must match Lemma 3.2's choice.
	idx := MustIndex(Config{Dims: 2, Bits: 10})
	q := []uint32{100, 333}
	for _, eps := range []float64{0.5, 0.25, 0.1, 0.05, 0.01} {
		_, found, stats, err := idx.Query(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatal("empty index cannot find points")
		}
		wantM, err := cubes.ChooseM(eps, 2)
		if err != nil {
			t.Fatal(err)
		}
		if stats.M != wantM {
			t.Errorf("eps=%v: M=%d want %d", eps, stats.M, wantM)
		}
		if stats.VolumeFraction < 1-eps {
			t.Errorf("eps=%v: volume fraction %v < %v", eps, stats.VolumeFraction, 1-eps)
		}
		if stats.RunsProbed != stats.CubesGenerated {
			t.Errorf("unsuccessful approx query must probe every generated cube: %d vs %d",
				stats.RunsProbed, stats.CubesGenerated)
		}
	}
}

func TestApproxCostIndependentOfSideLength(t *testing.T) {
	// The paper's headline: for α=0 queries, approximate cost depends on ε
	// but not on the region's side length. Exhaustive cost grows with it.
	idx := MustIndex(Config{Dims: 2, Bits: 16})
	const eps = 0.05
	var costs []int
	for _, exp := range []uint{8, 10, 12, 14} {
		l := uint64(1)<<exp + 1<<(exp-1) + 1 // e.g. 110...01: messy boundary
		q := []uint32{uint32(1<<16 - l), uint32(1<<16 - l)}
		_, _, stats, err := idx.Query(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, stats.CubesGenerated)
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] != costs[0] {
			t.Fatalf("approx cost varies with side length: %v", costs)
		}
	}
}

func TestMaxCubesCap(t *testing.T) {
	idx := MustIndex(Config{Dims: 2, Bits: 12, MaxCubes: 5})
	// A query region needing many cubes.
	q := []uint32{uint32(1<<12 - 257), uint32(1<<12 - 257)}
	_, _, stats, err := idx.Query(q, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CubesGenerated > 5 {
		t.Fatalf("cap ignored: %d cubes", stats.CubesGenerated)
	}
	if stats.VolumeFraction <= 0 || stats.VolumeFraction > 1 {
		t.Fatalf("volume fraction %v out of range", stats.VolumeFraction)
	}
}

func TestInsertDeleteAcrossSearchers(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	searchers := map[string]Searcher{
		"sfc":    MustIndex(Config{Dims: 2, Bits: 8}),
		"linear": NewLinear(),
		"kdtree": NewKDTree(2),
	}
	pts := randomPoints(rng, 60, 2, 8)
	for name, s := range searchers {
		for i, p := range pts {
			s.Insert(p, uint64(i))
		}
		if s.Len() != 60 {
			t.Fatalf("%s: Len=%d", name, s.Len())
		}
		// Delete half.
		for i := 0; i < 30; i++ {
			if !s.Delete(pts[i], uint64(i)) {
				t.Fatalf("%s: delete %d failed", name, i)
			}
			if s.Delete(pts[i], uint64(i)) {
				t.Fatalf("%s: double delete %d succeeded", name, i)
			}
		}
		if s.Len() != 30 {
			t.Fatalf("%s: Len=%d after deletes", name, s.Len())
		}
	}
	// Remaining points agree across searchers.
	for trial := 0; trial < 200; trial++ {
		q := randomPoints(rng, 1, 2, 8)[0]
		_, okSFC := searchers["sfc"].QueryDominating(q)
		_, okLin := searchers["linear"].QueryDominating(q)
		_, okKD := searchers["kdtree"].QueryDominating(q)
		if okSFC != okLin || okLin != okKD {
			t.Fatalf("post-delete disagreement at %v: sfc=%v lin=%v kd=%v", q, okSFC, okLin, okKD)
		}
	}
}

func TestDominatingPointAtQueryItself(t *testing.T) {
	// A point equal to the query dominates it (covering includes equality).
	for _, mk := range []func() Searcher{
		func() Searcher { return MustIndex(Config{Dims: 3, Bits: 5}) },
		func() Searcher { return NewLinear() },
		func() Searcher { return NewKDTree(3) },
	} {
		s := mk()
		p := []uint32{7, 3, 31}
		s.Insert(p, 42)
		if id, ok := s.QueryDominating(p); !ok || id != 42 {
			t.Fatalf("%T: self-dominance failed: %d %v", s, id, ok)
		}
	}
}

func TestMaxCornerAlwaysDominates(t *testing.T) {
	// The all-max point dominates every query.
	idx := MustIndex(Config{Dims: 2, Bits: 10})
	maxPt := []uint32{1023, 1023}
	idx.Insert(maxPt, 1)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		q := randomPoints(rng, 1, 2, 10)[0]
		if _, ok := idx.QueryDominating(q); !ok {
			t.Fatalf("exhaustive query missed the max corner for q=%v", q)
		}
		// The max corner lies in every truncated region too (the region is
		// anchored there), so even approximate queries must find it.
		if _, ok, _, _ := idx.Query(q, 0.3); !ok {
			t.Fatalf("approximate query missed the max corner for q=%v", q)
		}
	}
}

func TestKDTreeDeepDeleteThenQuery(t *testing.T) {
	kd := NewKDTree(2)
	lin := NewLinear()
	rng := rand.New(rand.NewSource(13))
	pts := randomPoints(rng, 100, 2, 6)
	for i, p := range pts {
		kd.Insert(p, uint64(i))
		lin.Insert(p, uint64(i))
	}
	// Delete a random 80%.
	perm := rng.Perm(100)
	for _, i := range perm[:80] {
		if !kd.Delete(pts[i], uint64(i)) || !lin.Delete(pts[i], uint64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for trial := 0; trial < 300; trial++ {
		q := randomPoints(rng, 1, 2, 6)[0]
		_, okKD := kd.QueryDominating(q)
		_, okLin := lin.QueryDominating(q)
		if okKD != okLin {
			t.Fatalf("kd/linear disagree at %v: %v vs %v", q, okKD, okLin)
		}
	}
}

func TestLinearDeleteRequiresMatchingPoint(t *testing.T) {
	lin := NewLinear()
	lin.Insert([]uint32{1, 2}, 5)
	if lin.Delete([]uint32{9, 9}, 5) {
		t.Fatal("delete with wrong point should fail")
	}
	if !lin.Delete([]uint32{1, 2}, 5) {
		t.Fatal("delete with right point should succeed")
	}
}
