package dominance

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sfccover/internal/bits"
	"sfccover/internal/obs"
	"sfccover/internal/sfc"
	"sfccover/internal/sfcarray"
)

// ShardedIndex is the SFC dominance index partitioned by key range: shard
// i owns a contiguous slice of the curve's key space, each slice backed by
// its own SFC array behind its own read-write lock.
//
// The layout exploits the same structural fact as the search itself: a
// standard cube occupies one contiguous key range (Fact 2.1), so a query
// decomposes its region ONCE — outside any lock — and routes each cube's
// range only to the shard slices it intersects (usually exactly one; a
// range can straddle a slice boundary). Compared to running one full
// search per shard, the expensive part of a query — cube enumeration — is
// never duplicated, and concurrent queries serialize only on the brief
// per-probe read locks of the shards they actually touch. Updates lock a
// single shard for one ordered-structure operation.
//
// Slice boundaries are MOVABLE at runtime: routing goes through an
// atomically swapped boundary table, and EqualizePair migrates a key
// subrange between adjacent slices under a short write barrier (the two
// slices' write locks). Readers never block on a migration that does not
// touch the slices they probe; a probe that overlaps a boundary swap
// detects the stale table and retries against the fresh one, so answers
// are always consistent with some table the index actually published.
//
// Because a sharded query probes the same cube sequence as a single-array
// query over the same point set, its hit/miss outcome (and approximation
// guarantee) is identical to an unsharded Index — only the lock footprint
// and per-probe tree sizes change. Boundary moves relocate entries between
// slices without ever dropping or duplicating one, so the equivalence
// holds before, during and after a rebalance.
type ShardedIndex struct {
	cfg    Config
	curve  sfc.Curve
	keyLen int // curve key width, Dims*Bits
	shards []shardSlot
	// probeHist, when set via SetObserver, receives sampled run-probe
	// latencies.
	probeHist *obs.Histogram
	// rawProbe is the routed probe bound once at construction; binding
	// the method value per query would allocate.
	rawProbe probeFn
	// scratchPool hands each concurrent query its own reusable buffers.
	scratchPool sync.Pool
	// cache memoizes decompositions (nil when disabled); entries are
	// immutable, so concurrent queries share them freely.
	cache *decompCache
	// budget drives adaptive per-query budgets (nil unless enabled).
	budget *budgetState

	// table points at the current boundary table: table[i] is the first
	// key slice i owns, table[0] is the zero key, and slice i ends where
	// slice i+1 begins (the last slice is unbounded above). Swapped
	// atomically — never mutated in place — so lock-free readers always
	// observe a complete table.
	table atomic.Pointer[[]bits.Key]
	// moveMu serializes boundary movers: concurrent EqualizePair calls on
	// disjoint pairs would otherwise lose each other's table swap.
	moveMu sync.Mutex
}

type shardSlot struct {
	mu   sync.RWMutex
	arr  sfcarray.Index
	seed int64 // the slot's array seed, reused when a migration rebuilds it
}

// maxPrefixBits bounds the initial routing prefix; 16 bits ≫ any sane
// shard count while keeping the prefix arithmetic in a uint64.
const maxPrefixBits = 16

// PrefixBits returns the routing-prefix width for a key of keyLen bits:
// the full key when it is narrower than the 16-bit cap, the cap otherwise.
// It is exported so placement layers that mirror the initial uniform
// slice layout (the engine's curve-prefix fan-out plan) derive the same
// prefix from the schema instead of hard-coding it.
func PrefixBits(keyLen int) int {
	if keyLen < maxPrefixBits {
		return keyLen
	}
	return maxPrefixBits
}

// NewSharded builds a key-range sharded dominance index with n shards.
// The initial boundaries split the key space uniformly by prefix; they
// move when EqualizePair migrates load between neighbors.
func NewSharded(cfg Config, n int) (*ShardedIndex, error) {
	cfg = cfg.withDefaults()
	if n < 1 {
		return nil, fmt.Errorf("dominance: invalid shard count %d", n)
	}
	curve, err := sfc.New(cfg.Curve, sfc.Config{Dims: cfg.Dims, Bits: cfg.Bits})
	if err != nil {
		return nil, fmt.Errorf("dominance: %w", err)
	}
	keyLen := cfg.Dims * cfg.Bits
	prefixBits := PrefixBits(keyLen)
	if n > 1<<uint(prefixBits) {
		return nil, fmt.Errorf("dominance: %d shards exceed the %d key-prefix slices", n, 1<<uint(prefixBits))
	}
	x := &ShardedIndex{
		cfg:    cfg,
		curve:  curve,
		keyLen: keyLen,
		shards: make([]shardSlot, n),
	}
	x.rawProbe = x.probe
	x.scratchPool.New = func() any { return new(queryScratch) }
	if cfg.CacheSize >= 0 {
		x.cache = newDecompCache(cfg.CacheSize)
	}
	if cfg.Adaptive {
		x.budget = &budgetState{}
	}
	for i := range x.shards {
		x.shards[i].seed = cfg.Seed + int64(i)
		arr, err := sfcarray.New(cfg.Array, x.shards[i].seed)
		if err != nil {
			return nil, fmt.Errorf("dominance: %w", err)
		}
		x.shards[i].arr = arr
	}
	// Slice i's first key is the smallest whose top prefixBits place it in
	// slice i under the uniform arithmetic top*n >> prefixBits == i, i.e.
	// ceil(i*2^p / n) shifted back up to key width.
	starts := make([]bits.Key, n)
	for i := 1; i < n; i++ {
		top := (uint64(i)<<uint(prefixBits) + uint64(n) - 1) / uint64(n)
		starts[i] = bits.KeyFromUint64(top).ShlN(keyLen - prefixBits)
	}
	x.table.Store(&starts)
	return x, nil
}

// NumShards returns the shard count.
func (x *ShardedIndex) NumShards() int { return len(x.shards) }

// Boundaries returns a copy of the current boundary table: element i is
// the first key slice i owns (element 0 is always the zero key).
func (x *ShardedIndex) Boundaries() []bits.Key {
	tab := *x.table.Load()
	return append([]bits.Key(nil), tab...)
}

// routeKey maps a curve key to the slice owning it under the given table:
// the last slice whose start is <= k.
func routeKey(tab []bits.Key, k bits.Key) int {
	return sort.Search(len(tab), func(i int) bool { return k.Less(tab[i]) }) - 1
}

// ShardFor maps a point to its home shard under the current boundaries.
// Callers that co-partition their own per-point state (e.g. a
// subscription store) use this to keep their partition roughly aligned
// with the index's; after a boundary move the index re-routes by key on
// every operation, so a stale caller-side assignment only affects load
// placement, never correctness.
func (x *ShardedIndex) ShardFor(p []uint32) int {
	return routeKey(*x.table.Load(), x.curve.Key(p))
}

// Len returns the number of indexed points.
func (x *ShardedIndex) Len() int {
	n := 0
	for i := range x.shards {
		s := &x.shards[i]
		s.mu.RLock()
		n += s.arr.Len()
		s.mu.RUnlock()
	}
	return n
}

// ShardSizes returns the per-shard point counts.
func (x *ShardedIndex) ShardSizes() []int {
	sizes := make([]int, len(x.shards))
	for i := range x.shards {
		s := &x.shards[i]
		s.mu.RLock()
		sizes[i] = s.arr.Len()
		s.mu.RUnlock()
	}
	return sizes
}

// Insert indexes point p under the given id, locking only its home slice.
// The route is validated after the lock is held: while a slice's write
// lock is held its boundaries cannot move, so a route that still matches
// is stable, and one invalidated by a concurrent boundary move retries.
func (x *ShardedIndex) Insert(p []uint32, id uint64) {
	k := x.curve.Key(p)
	for {
		s := routeKey(*x.table.Load(), k)
		slot := &x.shards[s]
		slot.mu.Lock()
		if routeKey(*x.table.Load(), k) == s {
			slot.arr.Insert(k, id)
			slot.mu.Unlock()
			return
		}
		slot.mu.Unlock()
	}
}

// InsertBatch indexes a group of points, aligned with ids, taking each
// slice lock once per batch instead of once per point: keys are computed
// and grouped by owning slice outside any lock, then each touched slice
// is bulk-loaded — in sorted order, through the array's sorted-batch
// path — under a single write-lock acquisition. Only one slice lock is
// held at a time, so concurrent batches cannot deadlock; items whose
// route a concurrent boundary move invalidates are regrouped and retried.
func (x *ShardedIndex) InsertBatch(ps [][]uint32, ids []uint64) {
	keys := make([]bits.Key, len(ps))
	for i, p := range ps {
		keys[i] = x.curve.Key(p)
	}
	pending := make([]int, len(keys))
	for i := range pending {
		pending[i] = i
	}
	for len(pending) > 0 {
		tabPtr := x.table.Load()
		groups := make(map[int][]int, 1)
		for _, i := range pending {
			shard := routeKey(*tabPtr, keys[i])
			groups[shard] = append(groups[shard], i)
		}
		pending = pending[:0]
		for shard, group := range groups {
			// Sort and scatter outside the lock; only the (order-
			// preserving) stale-route prune and the bulk load itself need
			// the write lock.
			gk, gi := sortedEntries(keys, ids, group)
			slot := &x.shards[shard]
			slot.mu.Lock()
			if cur := x.table.Load(); cur != tabPtr {
				// A boundary moved since grouping. Routes computed while
				// holding this slice's write lock are stable for this
				// slice, so keep the items it still owns and defer the
				// rest to the next round. group was sorted in tandem with
				// gk/gi, so deferred entries carry their original indices.
				w := 0
				for j, i := range group {
					if routeKey(*cur, gk[j]) == shard {
						gk[w], gi[w] = gk[j], gi[j]
						w++
					} else {
						pending = append(pending, i)
					}
				}
				gk, gi = gk[:w], gi[:w]
			}
			slot.arr.InsertSorted(gk, gi)
			slot.mu.Unlock()
		}
	}
}

// Delete removes one (p, id) entry, reporting whether it existed. Routing
// is validated under the slice lock exactly like Insert's.
func (x *ShardedIndex) Delete(p []uint32, id uint64) bool {
	k := x.curve.Key(p)
	for {
		s := routeKey(*x.table.Load(), k)
		slot := &x.shards[s]
		slot.mu.Lock()
		if routeKey(*x.table.Load(), k) == s {
			ok := slot.arr.Delete(k, id)
			slot.mu.Unlock()
			return ok
		}
		slot.mu.Unlock()
	}
}

// probe answers one run probe by visiting only the shards whose key
// slices intersect [lo, hi] — contiguous in shard order because the
// partition follows key order. Any outcome is accepted only if the
// boundary table did not change across the probe: a migration publishes
// its new table before releasing the write barrier, so an unchanged
// table proves the probed slices covered [lo, hi] in full and in order.
// A changed table sends the probe back around: a miss could have skipped
// migrated entries, and even a genuine hit could be non-minimal (a
// migration can move the range's smallest entry into a slice this probe
// had already passed), which would break the bit-identical-answers
// guarantee the sharded index gives against the single-array one.
//
//sfc:hotpath
func (x *ShardedIndex) probe(lo, hi bits.Key) (uint64, bool) {
	for {
		tabPtr := x.table.Load()
		first, last := routeKey(*tabPtr, lo), routeKey(*tabPtr, hi)
		var id uint64
		ok := false
		for i := first; i <= last && !ok; i++ {
			s := &x.shards[i]
			s.mu.RLock()
			id, ok = s.arr.FirstInRange(lo, hi)
			s.mu.RUnlock()
		}
		if x.table.Load() == tabPtr {
			return id, ok
		}
	}
}

// EqualizePair moves the boundary between adjacent slices i and i+1 so
// the two populations end as close to equal as the key distribution
// allows, migrating the entries of the shifted key subrange from the
// shrinking slice into its neighbor. The whole move runs under the two
// slices' write locks — the "short write barrier": the drained subrange
// is bulk-loaded into the neighbor with the sorted-batch path, the
// shrinking slice sheds it either by deleting the moved entries (small
// nudges) or by a cold rebuild from its kept entries (large moves), and
// the new boundary table is published before the barrier lifts. Entries
// sharing
// one key never split across a boundary (deletes route by key), so a
// pair whose merged population is a single key cannot move.
//
// It returns the number of entries migrated; 0 means the pair is already
// as balanced as its keys permit. It never blocks queries outside the
// two slices and is safe to call concurrently with any other operation.
func (x *ShardedIndex) EqualizePair(i int) (migrated int) {
	if i < 0 || i+1 >= len(x.shards) {
		return 0
	}
	x.moveMu.Lock()
	defer x.moveMu.Unlock()
	a, b := &x.shards[i], &x.shards[i+1]
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()

	na := a.arr.Len()
	nb := b.arr.Len()
	total := na + nb
	if total == 0 {
		return 0
	}
	// A split's imbalance |2s−total| can never beat the current
	// |na−nb| when the pair is already within one entry of even, so
	// skip the O(na+nb) gather for pairs that cannot improve.
	if abs(na-nb) <= 1 {
		return 0
	}
	// Gather both populations. Each VisitRange ascends and every key in
	// slice i precedes every key in slice i+1, so the concatenation is
	// sorted — exactly what the bulk-load path needs.
	keys := make([]bits.Key, 0, total)
	ids := make([]uint64, 0, total)
	full := bits.LowMask(bits.KeyBits)
	gather := func(arr sfcarray.Index) {
		arr.VisitRange(bits.Key{}, full, func(k bits.Key, id uint64) bool {
			keys = append(keys, k)
			ids = append(ids, id)
			return true
		})
	}
	gather(a.arr)
	gather(b.arr)

	split := splitPoint(keys, na)
	if split < 0 || split == na {
		return 0
	}
	if split < na {
		// Slice i sheds its top subrange [keys[split], ...) rightward.
		migrated = na - split
		x.shrinkSlice(a, keys, ids, 0, split, split, na)
		b.arr.InsertSorted(keys[split:na], ids[split:na])
	} else {
		// Slice i+1 sheds its bottom subrange leftward.
		migrated = split - na
		x.shrinkSlice(b, keys, ids, split, total, na, split)
		a.arr.InsertSorted(keys[na:split], ids[na:split])
	}
	old := *x.table.Load()
	starts := append([]bits.Key(nil), old...)
	starts[i+1] = keys[split]
	x.table.Store(&starts)
	return migrated
}

// shrinkSlice removes a migrated subrange from a slice: kept entries are
// keys[keptLo:keptHi], moved ones keys[movedLo:movedHi] (both windows
// index the gathered pair population). A small nudge drains the moved
// entries one delete at a time — O(m log n) — while a large move
// rebuilds the structure cold from the kept entries with the sorted bulk
// build, so the write barrier pays min(drain, rebuild). Both slice locks
// are held by the caller.
func (x *ShardedIndex) shrinkSlice(slot *shardSlot, keys []bits.Key, ids []uint64, keptLo, keptHi, movedLo, movedHi int) {
	kept := keptHi - keptLo
	moved := movedHi - movedLo
	if moved*4 <= kept {
		for j := movedLo; j < movedHi; j++ {
			if !slot.arr.Delete(keys[j], ids[j]) {
				panic("dominance: migration lost an entry")
			}
		}
		return
	}
	newArr, err := sfcarray.New(x.cfg.Array, slot.seed)
	if err != nil {
		panic(fmt.Sprintf("dominance: rebuilding slice: %v", err)) // cfg.Array was validated at construction
	}
	newArr.InsertSorted(keys[keptLo:keptHi], ids[keptLo:keptHi])
	slot.arr = newArr
}

// splitPoint picks the split index nearest total/2 that does not divide a
// run of equal keys (entries at the boundary key must all land in the
// right slice, where deletes will route them). Within each direction the
// imbalance |2s−total| grows monotonically with distance from the middle,
// so the best admissible split overall is the better of the first
// admissible candidate below the middle and the first at or above it.
// It returns -1 when no admissible split exists or the best one does not
// strictly improve on the current division at na.
func splitPoint(keys []bits.Key, na int) int {
	total := len(keys)
	admissible := func(s int) bool {
		return s > 0 && s < total && keys[s-1].Less(keys[s])
	}
	best := -1
	for s := total / 2; s > 0; s-- {
		if admissible(s) {
			best = s
			break
		}
	}
	for s := total/2 + 1; s < total; s++ {
		if admissible(s) {
			if best == -1 || abs(2*s-total) < abs(2*best-total) {
				best = s
			}
			break
		}
	}
	if best == -1 || abs(2*best-total) >= abs(2*na-total) {
		return -1
	}
	return best
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Query answers a point dominance query at q with the same semantics and
// Stats as (*Index).Query: eps == 0 is the exhaustive search, 0 < eps < 1
// the ε-approximate search. The decomposition runs unlocked and is shared
// across all shards; RunsProbed counts logical run probes (a run
// straddling a slice boundary costs one probe per shard touched but is
// counted once).
func (x *ShardedIndex) Query(q []uint32, eps float64) (uint64, bool, Stats, error) {
	return x.QueryTraced(q, eps, nil)
}

// CacheStats reports the decomposition cache's hit and miss counts
// (zeros when the cache is disabled).
func (x *ShardedIndex) CacheStats() (hits, misses uint64) {
	if x.cache == nil {
		return 0, 0
	}
	return x.cache.hits.Load(), x.cache.misses.Load()
}
