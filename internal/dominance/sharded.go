package dominance

import (
	"fmt"
	"sync"

	"sfccover/internal/bits"
	"sfccover/internal/geom"
	"sfccover/internal/sfc"
	"sfccover/internal/sfcarray"
)

// ShardedIndex is the SFC dominance index partitioned by key range: shard
// i owns the i-th contiguous slice of the curve's key space, each slice
// backed by its own SFC array behind its own read-write lock.
//
// The layout exploits the same structural fact as the search itself: a
// standard cube occupies one contiguous key range (Fact 2.1), so a query
// decomposes its region ONCE — outside any lock — and routes each cube's
// range only to the shard slices it intersects (usually exactly one; a
// range can straddle a slice boundary). Compared to running one full
// search per shard, the expensive part of a query — cube enumeration — is
// never duplicated, and concurrent queries serialize only on the brief
// per-probe read locks of the shards they actually touch. Updates lock a
// single shard for one ordered-structure operation.
//
// Because a sharded query probes the same cube sequence as a single-array
// query over the same point set, its hit/miss outcome (and approximation
// guarantee) is identical to an unsharded Index — only the lock footprint
// and per-probe tree sizes change.
type ShardedIndex struct {
	cfg        Config
	curve      sfc.Curve
	keyLen     int // curve key width, Dims*Bits
	prefixBits int // bits of key prefix used for routing
	shards     []shardSlot
}

type shardSlot struct {
	mu  sync.RWMutex
	arr sfcarray.Index
}

// maxPrefixBits bounds the routing prefix; 16 bits ≫ any sane shard count
// while keeping the prefix arithmetic in a uint64.
const maxPrefixBits = 16

// NewSharded builds a key-range sharded dominance index with n shards.
func NewSharded(cfg Config, n int) (*ShardedIndex, error) {
	cfg = cfg.withDefaults()
	if n < 1 {
		return nil, fmt.Errorf("dominance: invalid shard count %d", n)
	}
	curve, err := sfc.New(cfg.Curve, sfc.Config{Dims: cfg.Dims, Bits: cfg.Bits})
	if err != nil {
		return nil, fmt.Errorf("dominance: %w", err)
	}
	keyLen := cfg.Dims * cfg.Bits
	prefixBits := maxPrefixBits
	if keyLen < prefixBits {
		prefixBits = keyLen
	}
	if n > 1<<uint(prefixBits) {
		return nil, fmt.Errorf("dominance: %d shards exceed the %d key-prefix slices", n, 1<<uint(prefixBits))
	}
	x := &ShardedIndex{
		cfg:        cfg,
		curve:      curve,
		keyLen:     keyLen,
		prefixBits: prefixBits,
		shards:     make([]shardSlot, n),
	}
	for i := range x.shards {
		arr, err := sfcarray.New(cfg.Array, cfg.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("dominance: %w", err)
		}
		x.shards[i].arr = arr
	}
	return x, nil
}

// NumShards returns the shard count.
func (x *ShardedIndex) NumShards() int { return len(x.shards) }

// shardForKey maps a curve key to the shard owning its key slice.
func (x *ShardedIndex) shardForKey(k bits.Key) int {
	top, _ := k.ShrN(x.keyLen - x.prefixBits).Uint64()
	return int(top * uint64(len(x.shards)) >> uint(x.prefixBits))
}

// ShardFor maps a point to its home shard. Callers that co-partition
// their own per-point state (e.g. a subscription store) use this to keep
// their partition aligned with the index's.
func (x *ShardedIndex) ShardFor(p []uint32) int {
	return x.shardForKey(x.curve.Key(p))
}

// Len returns the number of indexed points.
func (x *ShardedIndex) Len() int {
	n := 0
	for i := range x.shards {
		s := &x.shards[i]
		s.mu.RLock()
		n += s.arr.Len()
		s.mu.RUnlock()
	}
	return n
}

// ShardSizes returns the per-shard point counts.
func (x *ShardedIndex) ShardSizes() []int {
	sizes := make([]int, len(x.shards))
	for i := range x.shards {
		s := &x.shards[i]
		s.mu.RLock()
		sizes[i] = s.arr.Len()
		s.mu.RUnlock()
	}
	return sizes
}

// Insert indexes point p under the given id, locking only its home shard.
func (x *ShardedIndex) Insert(p []uint32, id uint64) {
	k := x.curve.Key(p)
	s := &x.shards[x.shardForKey(k)]
	s.mu.Lock()
	s.arr.Insert(k, id)
	s.mu.Unlock()
}

// InsertBatch indexes a group of points, aligned with ids, taking each
// slice lock once per batch instead of once per point: keys are computed
// and grouped by owning slice outside any lock, then each touched slice
// is bulk-loaded under a single write-lock acquisition. Only one slice
// lock is held at a time, so concurrent batches cannot deadlock.
func (x *ShardedIndex) InsertBatch(ps [][]uint32, ids []uint64) {
	keys := make([]bits.Key, len(ps))
	groups := make(map[int][]int, 1)
	for i, p := range ps {
		keys[i] = x.curve.Key(p)
		shard := x.shardForKey(keys[i])
		groups[shard] = append(groups[shard], i)
	}
	for shard, group := range groups {
		s := &x.shards[shard]
		s.mu.Lock()
		for _, i := range group {
			s.arr.Insert(keys[i], ids[i])
		}
		s.mu.Unlock()
	}
}

// Delete removes one (p, id) entry, reporting whether it existed.
func (x *ShardedIndex) Delete(p []uint32, id uint64) bool {
	k := x.curve.Key(p)
	s := &x.shards[x.shardForKey(k)]
	s.mu.Lock()
	ok := s.arr.Delete(k, id)
	s.mu.Unlock()
	return ok
}

// probe answers one run probe by visiting only the shards whose key
// slices intersect [lo, hi] — contiguous in shard order because the
// partition follows key order.
func (x *ShardedIndex) probe(lo, hi bits.Key) (uint64, bool) {
	first, last := x.shardForKey(lo), x.shardForKey(hi)
	for i := first; i <= last; i++ {
		s := &x.shards[i]
		s.mu.RLock()
		id, ok := s.arr.FirstInRange(lo, hi)
		s.mu.RUnlock()
		if ok {
			return id, true
		}
	}
	return 0, false
}

// Query answers a point dominance query at q with the same semantics and
// Stats as (*Index).Query: eps == 0 is the exhaustive search, 0 < eps < 1
// the ε-approximate search. The decomposition runs unlocked and is shared
// across all shards; RunsProbed counts logical run probes (a run
// straddling a slice boundary costs one probe per shard touched but is
// counted once).
func (x *ShardedIndex) Query(q []uint32, eps float64) (uint64, bool, Stats, error) {
	var stats Stats
	if len(q) != x.cfg.Dims {
		return 0, false, stats, errDims(len(q), x.cfg.Dims)
	}
	if eps < 0 || eps >= 1 {
		return 0, false, stats, errEps(eps)
	}
	region := geom.QueryRegion(q, x.cfg.Bits)
	stats.AspectRatio = region.AspectRatio()
	var (
		id  uint64
		ok  bool
		err error
	)
	if eps == 0 {
		id, ok, err = searchExhaustive(x.curve, x.cfg.Bits, x.probe, region, &stats)
	} else {
		id, ok, err = searchApprox(x.curve, x.cfg.Bits, x.cfg.MaxCubes, x.probe, region, eps, &stats)
	}
	return id, ok, stats, err
}
