package dominance

import (
	"math"
	"math/rand"
	"testing"

	"sfccover/internal/geom"
)

// TestAdaptiveSoundness: whatever budget the adaptive policy picks, a
// reported point must genuinely dominate the query — soundness is
// independent of ε and the cube cap.
func TestAdaptiveSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	cfg := Config{Dims: 2, Bits: 7, Seed: 9, Adaptive: true, MaxCubes: 512}
	idx := MustIndex(cfg)
	pts := randomPoints(rng, 500, cfg.Dims, cfg.Bits)
	for i, p := range pts {
		idx.Insert(p, uint64(i))
	}
	for _, q := range randomPoints(rng, 400, cfg.Dims, cfg.Bits) {
		id, ok, stats, err := idx.Query(q, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		p := pts[id]
		for j := range q {
			if p[j] < q[j] {
				t.Fatalf("adaptive query %v returned non-dominating point %v (id %d)", q, p, id)
			}
		}
		if !stats.Found {
			t.Fatalf("ok=true but stats.Found=false for q=%v", q)
		}
	}
}

// TestAdaptiveExhaustiveUntouched: ε = 0 queries bypass the policy
// entirely — adaptive mode must never turn an exhaustive query
// approximate.
func TestAdaptiveExhaustiveUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	cfg := Config{Dims: 2, Bits: 6, Seed: 4, Adaptive: true}
	idx := MustIndex(cfg)
	oracle := NewLinear()
	for i, p := range randomPoints(rng, 300, cfg.Dims, cfg.Bits) {
		idx.Insert(p, uint64(i))
		oracle.Insert(p, uint64(i))
	}
	// Warm the policy with approximate traffic first so its counters are
	// live when the exhaustive queries run.
	for _, q := range randomPoints(rng, 64, cfg.Dims, cfg.Bits) {
		idx.Query(q, 0.3)
	}
	for _, q := range randomPoints(rng, 200, cfg.Dims, cfg.Bits) {
		_, ok := idx.QueryDominating(q)
		_, want := oracle.QueryDominating(q)
		if ok != want {
			t.Fatalf("adaptive exhaustive q=%v: got %v want %v", q, ok, want)
		}
	}
}

// TestAdaptBudgetPolicy unit-tests the policy arithmetic: the derived ε
// respects the configured floor, the grid, and the adaptiveMaxEps cap;
// the derived cube budget is a power of two in [adaptiveMinCubes,
// configured cap].
func TestAdaptBudgetPolicy(t *testing.T) {
	region := geom.QueryRegion([]uint32{1, 1}, 8)
	b := &budgetState{}

	// Before warmup the policy passes budgets through (ε snaps to grid).
	eps, maxc := b.adapt(0.25, 1024, 2, region)
	if eps != 0.25 || maxc != 1024 {
		t.Fatalf("cold policy changed budget: eps=%g maxc=%d", eps, maxc)
	}
	// Exhaustive queries are never adapted.
	if e, m := b.adapt(0, 1024, 2, region); e != 0 || m != 1024 {
		t.Fatalf("exhaustive budget adapted: eps=%g maxc=%d", e, m)
	}

	// Feed a workload: small cube counts, low aspect ratios, no
	// shortfalls — the cap should contract toward the observed mean.
	for i := 0; i < 100; i++ {
		st := Stats{CubesGenerated: 10, AspectRatio: 0, VolumeFraction: 1, Found: true}
		b.record(&st, 0.25)
	}
	eps, maxc = b.adapt(0.25, 1<<20, 2, region)
	if eps < 0.25 {
		t.Fatalf("eps %g fell below configured floor", eps)
	}
	if eps > adaptiveMaxEps {
		t.Fatalf("eps %g exceeds adaptiveMaxEps", eps)
	}
	if g := eps * adaptiveEpsGrid; g != math.Trunc(g) {
		t.Fatalf("eps %g is off the 1/%d grid", eps, adaptiveEpsGrid)
	}
	if maxc < adaptiveMinCubes || maxc > defaultAdaptiveTarget {
		t.Fatalf("derived cap %d outside [%d, %d]", maxc, adaptiveMinCubes, defaultAdaptiveTarget)
	}
	if maxc&(maxc-1) != 0 {
		t.Fatalf("derived cap %d is not a power of two", maxc)
	}
	// The configured cap stays a ceiling when it is tighter.
	if _, m := b.adapt(0.25, 300, 2, region); m > 300 {
		t.Fatalf("derived cap %d exceeds configured ceiling 300", m)
	}

	// A shortfall-heavy workload coarsens ε but never past the cap.
	bs := &budgetState{}
	for i := 0; i < 100; i++ {
		st := Stats{CubesGenerated: 5000, AspectRatio: 6, VolumeFraction: 0.1}
		bs.record(&st, 0.25)
	}
	eps2, _ := bs.adapt(0.25, 0, 2, region)
	if eps2 <= 0.25 {
		t.Fatalf("shortfall workload did not coarsen eps (still %g)", eps2)
	}
	if eps2 > adaptiveMaxEps {
		t.Fatalf("coarsened eps %g exceeds adaptiveMaxEps", eps2)
	}
	// Extreme configured ε survives the grid ceil without reaching 1.
	eps3, _ := bs.adapt(0.99, 0, 2, region)
	if eps3 >= 1 {
		t.Fatalf("adapted eps %g reached 1", eps3)
	}
	if eps3 < 0.99 {
		t.Fatalf("adapted eps %g below configured floor 0.99", eps3)
	}
}

// TestAdaptiveShardedConcurrent hammers the policy's atomic counters
// from concurrent queriers (meaningful under -race).
func TestAdaptiveShardedConcurrent(t *testing.T) {
	cfg := Config{Dims: 2, Bits: 6, Seed: 2, Adaptive: true}
	x, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	pts := randomPoints(rng, 300, 2, 6)
	for i, p := range pts {
		x.Insert(p, uint64(i))
	}
	queries := randomPoints(rng, 64, 2, 6)
	done := make(chan struct{})
	for g := 0; g < 6; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for round := 0; round < 3; round++ {
				for _, q := range queries {
					if id, ok, _, err := x.Query(q, 0.2); err != nil {
						t.Errorf("query error: %v", err)
						return
					} else if ok {
						p := pts[id]
						for j := range q {
							if p[j] < q[j] {
								t.Errorf("non-dominating answer %v for %v", p, q)
								return
							}
						}
					}
				}
			}
		}()
	}
	for g := 0; g < 6; g++ {
		<-done
	}
}
