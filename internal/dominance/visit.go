package dominance

import (
	"fmt"

	"sfccover/internal/bits"
	"sfccover/internal/cubes"
	"sfccover/internal/geom"
	"sfccover/internal/sfc"
)

// VisitDominating reports every indexed point that dominates q and lies in
// the searched region, invoking visit with each point's id until visit
// returns false. With eps == 0 the search region is the whole dominance
// region (exhaustive — mind Theorem 4.1's cost); with 0 < eps < 1 it is the
// same (1−ε)-volume region Query searches, so the enumeration carries the
// usual approximate-covering guarantee: everything reported genuinely
// dominates, points in the skipped corner may be missed.
//
// In the pub/sub application this enumerates (a sample of) all covering
// subscriptions — the covering degree — rather than just one witness.
func (x *Index) VisitDominating(q []uint32, eps float64, visit func(id uint64) bool) (Stats, error) {
	var stats Stats
	if len(q) != x.cfg.Dims {
		return stats, errDims(len(q), x.cfg.Dims)
	}
	if eps < 0 || eps >= 1 {
		return stats, errEps(eps)
	}
	region := geom.QueryRegion(q, x.cfg.Bits)
	stats.AspectRatio = region.AspectRatio()
	fullVol := region.Volume()

	target := region
	targetVol := 0.0
	if eps > 0 {
		tr, m, err := cubes.TruncateExtremal(region, eps)
		if err != nil {
			return stats, err
		}
		target, stats.M = tr, m
		targetVol = (1 - eps) * fullVol
	}

	stopped := false
	visitRange := func(lo, hi bits.Key) {
		stats.RunsProbed++
		x.arr.VisitRange(lo, hi, func(_ bits.Key, id uint64) bool {
			stats.Found = true
			if !visit(id) {
				stopped = true
				return false
			}
			return true
		})
	}

	if eps == 0 {
		partition, err := cubes.Decompose(target.Rect(), x.cfg.Bits)
		if err != nil {
			return stats, err
		}
		stats.CubesGenerated = len(partition)
		stats.VolumeFraction = 1
		stats.SearchedLen = append([]uint64(nil), region.Len...)
		for _, r := range cubes.Runs(x.curve, partition) {
			if stopped {
				break
			}
			visitRange(r.Lo, r.Hi)
		}
		return stats, nil
	}

	searched := 0.0
	capped := false
	for level := x.cfg.Bits; level >= 0 && !stopped && !capped; level-- {
		err := cubes.EnumLevelVisit(target, level, func(corner []uint32, side uint64) bool {
			stats.CubesGenerated++
			cubeVol := 1.0
			for range corner {
				cubeVol *= float64(side)
			}
			searched += cubeVol
			r := sfc.CubeRange(x.curve, corner, side)
			visitRange(r.Lo, r.Hi)
			if stopped {
				return false
			}
			if x.cfg.MaxCubes > 0 && stats.CubesGenerated >= x.cfg.MaxCubes {
				capped = true
				return false
			}
			return true
		})
		if err != nil {
			return stats, err
		}
		stats.VolumeFraction = searched / fullVol
		if stopped || capped {
			return stats, nil
		}
		stats.SearchedLen = bits.SVec(target.Len, level)
		if searched >= targetVol {
			return stats, nil
		}
	}
	stats.SearchedLen = append([]uint64(nil), target.Len...)
	return stats, nil
}

// CountDominating counts the indexed points in the searched region that
// dominate q, with the same eps semantics as VisitDominating.
func (x *Index) CountDominating(q []uint32, eps float64) (int, Stats, error) {
	count := 0
	stats, err := x.VisitDominating(q, eps, func(uint64) bool {
		count++
		return true
	})
	return count, stats, err
}

func errDims(got, want int) error {
	return fmt.Errorf("dominance: query has %d dims, index has %d", got, want)
}

func errEps(eps float64) error {
	return fmt.Errorf("dominance: epsilon %v out of range [0,1)", eps)
}
