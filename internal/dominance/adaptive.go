package dominance

import (
	"math"
	"sync/atomic"

	"sfccover/internal/geom"
)

const (
	// adaptiveEpsGrid quantizes the adaptive ε so the decomposition
	// cache sees a small set of effective budgets instead of one per
	// observed-counter state.
	adaptiveEpsGrid = 64
	// adaptiveMaxEps caps how coarse the adaptive policy may go: beyond
	// ε = 1/2 the approximation guarantee stops meaning much.
	adaptiveMaxEps = 0.5
	// adaptiveWarmup is how many queries the policy observes before it
	// trusts its counters.
	adaptiveWarmup = 32
	// adaptiveMinCubes / defaultAdaptiveTarget bound the derived cube
	// budget from below and above.
	adaptiveMinCubes      = 256
	defaultAdaptiveTarget = 1 << 14
	// adaptiveHeadroom scales the observed mean cube count into a
	// budget: typical queries finish well inside it, only outliers are
	// clipped.
	adaptiveHeadroom = 8
)

// budgetState is the observed-workload summary behind adaptive
// per-query budgets: instead of threading one fixed (ε, MaxCubes) pair
// through every query, the policy watches the QueryStats stream — cube
// counts, aspect ratios, and how often searches fell short of their
// volume target — and derives each query's effective budget from it.
// All fields are atomic counters; adapt and record are lock-free and
// allocation-free.
//
// Soundness is unchanged by any budget: a reported point always
// dominates the query, because the search only probes key ranges of
// cubes genuinely inside the region. The budgets trade only the
// fraction of the region searched (reported in Stats.VolumeFraction)
// against work.
type budgetState struct {
	queries  atomic.Uint64 // completed queries observed
	cubes    atomic.Uint64 // sum of CubesGenerated
	alphaSum atomic.Uint64 // sum of aspect ratios
	short    atomic.Uint64 // misses that fell short of their volume target
}

// adapt derives the effective (ε, MaxCubes) for one query.
//
//   - MaxCubes: after warmup the cap becomes adaptiveHeadroom × the
//     observed mean cube count (clamped to [adaptiveMinCubes, the
//     configured cap], rounded up to a power of two so the cache key
//     space stays coarse) — a budget sized to the workload instead of a
//     blunt global constant.
//   - ε: queries whose aspect ratio exceeds the observed mean get one
//     grid step (1/64) coarser per excess unit — Theorem 4.1 makes
//     high-α regions disproportionately expensive — and a persistent
//     shortfall rate (searches clipped by the cap) coarsens every query
//     until searches complete inside their budget again. ε never drops
//     below the configured value and never exceeds adaptiveMaxEps.
//
//sfc:hotpath
func (b *budgetState) adapt(eps float64, maxCubes, d int, region geom.Extremal) (float64, int) {
	if eps <= 0 {
		// Exhaustive queries have no budget to adapt.
		return eps, maxCubes
	}
	q := b.queries.Load()
	capEff := maxCubes
	if capEff <= 0 || capEff > defaultAdaptiveTarget {
		capEff = defaultAdaptiveTarget
	}
	steps := 0
	if q >= adaptiveWarmup {
		mean := b.cubes.Load() / q
		t := adaptiveHeadroom * (mean + 1)
		if t < adaptiveMinCubes {
			t = adaptiveMinCubes
		}
		// Round up to a power of two to keep the cache-key space coarse.
		p := uint64(adaptiveMinCubes)
		for p < t {
			p <<= 1
		}
		if int(p) < capEff {
			capEff = int(p)
		}
		meanAlpha := int(b.alphaSum.Load() / q)
		if excess := region.AspectRatio() - meanAlpha; excess > 0 {
			steps += excess
		}
		// shortRate in eighths: 0..8.
		steps += int(b.short.Load() * 8 / q)
	}
	epsEff := eps + float64(steps)/adaptiveEpsGrid
	// Snap up to the grid so the cache sees quantized budgets, then
	// clamp: never coarser than adaptiveMaxEps, never finer than the
	// configured ε (which also keeps ε < 1 for extreme configs).
	epsEff = math.Ceil(epsEff*adaptiveEpsGrid) / adaptiveEpsGrid
	if epsEff > adaptiveMaxEps {
		epsEff = adaptiveMaxEps
	}
	if epsEff < eps {
		epsEff = eps
	}
	return epsEff, capEff
}

// record feeds one completed query's stats back into the policy. A
// query counts as short only when it missed AND stopped below its
// volume target — early hits are the search working as intended.
func (b *budgetState) record(stats *Stats, epsEff float64) {
	b.queries.Add(1)
	b.cubes.Add(uint64(stats.CubesGenerated))
	b.alphaSum.Add(uint64(stats.AspectRatio))
	if epsEff > 0 && !stats.Found && stats.VolumeFraction < 1-epsEff {
		b.short.Add(1)
	}
}
