// Smoke test: every program under examples/ must build and run to
// completion. The examples double as end-to-end tests of the public facade
// (including the sfcd daemon example, which round-trips a real TCP
// connection).
package sfccover_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test invokes the go tool; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	goTool := filepath.Join(os.Getenv("GOROOT"), "bin", "go")
	if _, err := exec.LookPath("go"); err == nil {
		goTool = "go"
	}
	bin := t.TempDir()
	for _, entry := range entries {
		if !entry.IsDir() {
			continue
		}
		name := entry.Name()
		t.Run(name, func(t *testing.T) {
			exe := filepath.Join(bin, name)
			build := exec.Command(goTool, "build", "-o", exe, "./"+filepath.Join("examples", name))
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build failed: %v\n%s", err, out)
			}
			run := exec.Command(exe)
			done := make(chan error, 1)
			var out []byte
			go func() {
				var err error
				out, err = run.CombinedOutput()
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run failed: %v\n%s", err, out)
				}
				if len(out) == 0 {
					t.Error("example produced no output")
				}
			case <-time.After(2 * time.Minute):
				run.Process.Kill()
				t.Fatalf("example did not finish within 2 minutes")
			}
		})
	}
}
