package sfccover_test

import (
	"testing"

	"sfccover"
)

// TestQuickstartFlow exercises the README quickstart end to end through the
// public API only.
func TestQuickstartFlow(t *testing.T) {
	schema, err := sfccover.NewSchema(10, "volume", "price")
	if err != nil {
		t.Fatal(err)
	}
	det, err := sfccover.NewDetector(sfccover.DetectorConfig{
		Schema:  schema,
		Mode:    sfccover.ModeApprox,
		Epsilon: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}

	wide, err := sfccover.ParseSubscription(schema, "volume in [100,900] && price in [10,400]")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Insert(wide); err != nil {
		t.Fatal(err)
	}

	narrow := sfccover.MustParseSubscription(schema, "volume in [300,700] && price in [88,95]")
	_, covered, coveredBy, err := det.Add(narrow)
	if err != nil {
		t.Fatal(err)
	}
	// The wide subscription's point dominates at a generous distance, so
	// even the approximate search finds it.
	if !covered {
		t.Fatal("expected the wide subscription to cover the narrow one")
	}
	cover, ok := det.Subscription(coveredBy)
	if !ok || !cover.Covers(narrow) {
		t.Fatal("reported cover is not genuine")
	}

	ev, err := sfccover.ParseEvent(schema, "volume = 500, price = 90")
	if err != nil {
		t.Fatal(err)
	}
	if !narrow.Matches(ev) || !wide.Matches(ev) {
		t.Fatal("event must match both subscriptions")
	}

	// The paper's introduction example on a three-attribute schema:
	// matching works on any schema; covering detection on schemas with
	// equality constraints is where the aspect-ratio caveat bites (see
	// README), so this one only demonstrates matching.
	stocks := sfccover.MustSchema(10, "stock", "volume", "current")
	sub := sfccover.MustParseSubscription(stocks, "stock == 3 && volume > 500 && current < 95")
	evPaper, err := sfccover.ParseEvent(stocks, "stock = 3, volume = 1000, current = 88")
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Matches(evPaper) {
		t.Fatal("the paper's introduction example must match")
	}
}

func TestNetworkFacade(t *testing.T) {
	schema := sfccover.MustSchema(8, "topic", "severity")
	net, err := sfccover.NewNetwork(sfccover.BalancedTreeTopology(7), sfccover.NetworkConfig{
		Schema:  schema,
		Mode:    sfccover.ModeApprox,
		Epsilon: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	subscriber, err := net.AttachClient(3)
	if err != nil {
		t.Fatal(err)
	}
	publisher, err := net.AttachClient(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Subscribe(subscriber.ID, sfccover.MustParseSubscription(schema, "severity >= 200")); err != nil {
		t.Fatal(err)
	}
	net.Drain()
	ev, err := sfccover.NewEvent(schema, map[string]uint32{"topic": 9, "severity": 250})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Publish(publisher.ID, ev); err != nil {
		t.Fatal(err)
	}
	net.Drain()
	if len(subscriber.Received) != 1 {
		t.Fatalf("subscriber received %d events, want 1", len(subscriber.Received))
	}
	if m := net.Metrics(); m.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d", m.ProtocolErrors)
	}
}

func TestQuantizerFacade(t *testing.T) {
	q, err := sfccover.NewQuantizer(0, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	r, err := q.QuantizeRange(88.5, 95.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Lo > r.Hi {
		t.Fatal("quantized range inverted")
	}
	for _, topo := range []sfccover.Topology{
		sfccover.LineTopology(3),
		sfccover.StarTopology(4),
		sfccover.RandomTreeTopology(5, 1),
	} {
		if topo.N < 3 {
			t.Fatalf("unexpected topology size %d", topo.N)
		}
	}
}
