package sfccover_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"sfccover"
)

func TestMergeSubscriptionsFacade(t *testing.T) {
	schema := sfccover.MustSchema(8, "x", "y")
	a := sfccover.MustParseSubscription(schema, "x in [0,10] && y in [5,9]")
	b := sfccover.MustParseSubscription(schema, "x in [11,30] && y in [5,9]")
	m, ok := sfccover.MergeSubscriptions(a, b)
	if !ok {
		t.Fatal("adjacent rectangles must merge")
	}
	if !m.Covers(a) || !m.Covers(b) {
		t.Fatal("merged subscription must cover both inputs")
	}
	c := sfccover.MustParseSubscription(schema, "x in [50,60] && y in [50,60]")
	if _, ok := sfccover.MergeSubscriptions(a, c); ok {
		t.Fatal("disjoint rectangles must not merge")
	}
}

func TestFindCoveredFacade(t *testing.T) {
	schema := sfccover.MustSchema(10, "volume", "price")
	det, err := sfccover.NewDetector(sfccover.DetectorConfig{
		Schema:       schema,
		Mode:         sfccover.ModeApprox,
		Epsilon:      0.3,
		TrackCovered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	narrow := sfccover.MustParseSubscription(schema, "volume in [400,600] && price in [100,200]")
	narrowID, err := det.Insert(narrow)
	if err != nil {
		t.Fatal(err)
	}
	wide := sfccover.MustParseSubscription(schema, "volume in [100,900] && price in [10,500]")
	id, found, _, err := det.FindCovered(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !found || id != narrowID {
		t.Fatalf("FindCovered = (%d,%v), want (%d,true)", id, found, narrowID)
	}

	// Covering degree through the facade: the wide subscription covers the
	// probe generously, so even the approximate count sees at least it.
	if _, err := det.Insert(wide); err != nil {
		t.Fatal(err)
	}
	n, err := det.CoverDegree(sfccover.MustParseSubscription(schema, "volume in [450,550] && price in [120,180]"))
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("CoverDegree = %d, want >= 1 (the wide subscription)", n)
	}
}

func TestWireFacade(t *testing.T) {
	schema := sfccover.MustSchema(10, "volume", "price")
	s := sfccover.MustParseSubscription(schema, "volume in [10,20] && price >= 500")
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := sfccover.UnmarshalSubscription(schema, data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatal("subscription wire roundtrip failed")
	}

	ev, err := sfccover.ParseEvent(schema, "volume = 15, price = 700")
	if err != nil {
		t.Fatal(err)
	}
	evData, err := ev.MarshalBinary(schema)
	if err != nil {
		t.Fatal(err)
	}
	evBack, err := sfccover.UnmarshalEvent(schema, evData)
	if err != nil {
		t.Fatal(err)
	}
	if evBack[0] != 15 || !back.Matches(evBack) {
		t.Fatal("event wire roundtrip failed")
	}
}

func TestConcurrentNetworkFacade(t *testing.T) {
	schema := sfccover.MustSchema(8, "topic", "level")
	net, err := sfccover.NewConcurrentNetwork(sfccover.LineTopology(3), sfccover.NetworkConfig{
		Schema: schema, Mode: sfccover.ModeExact, Strategy: sfccover.StrategyLinear,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	sub, err := net.AttachClient(0)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := net.AttachClient(2)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	if err := net.Subscribe(sub.ID, sfccover.MustParseSubscription(schema, "level >= 100")); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	ev, _ := sfccover.ParseEvent(schema, "topic = 1, level = 150")
	if err := net.Publish(pub.ID, ev); err != nil {
		t.Fatal(err)
	}
	net.Flush()
	if len(sub.Received) != 1 {
		t.Fatalf("received %d events, want 1", len(sub.Received))
	}
}

// TestProviderFacade drives a Detector and an Engine through the shared
// Provider interface: same protocol, different backing index.
func TestProviderFacade(t *testing.T) {
	schema := sfccover.MustSchema(10, "volume", "price")
	det, err := sfccover.NewDetector(sfccover.DetectorConfig{
		Schema: schema, Mode: sfccover.ModeExact, Strategy: sfccover.StrategyLinear,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sfccover.NewEngine(sfccover.EngineConfig{
		Detector: sfccover.DetectorConfig{
			Schema: schema, Mode: sfccover.ModeExact, Strategy: sfccover.StrategyLinear,
		},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	wide := sfccover.MustParseSubscription(schema, "volume in [0,900] && price in [0,900]")
	narrow := sfccover.MustParseSubscription(schema, "volume in [100,200] && price in [100,200]")
	for _, p := range []sfccover.Provider{det, eng} {
		if _, covered, _, err := p.Add(wide); err != nil || covered {
			t.Fatalf("wide: covered=%v err=%v", covered, err)
		}
		if _, covered, _, err := p.Add(narrow); err != nil || !covered {
			t.Fatalf("narrow: covered=%v err=%v", covered, err)
		}
		res := sfccover.CoverQueries(p, []*sfccover.Subscription{narrow, wide})
		if !res[0].Covered {
			t.Fatal("batch query must find the cover of narrow")
		}
		ps := p.Stats()
		if ps.Subscriptions != 2 || ps.Queries < 3 {
			t.Fatalf("provider stats = %+v", ps)
		}
		if _, found, _, err := p.FindCovered(wide); err != nil || !found {
			t.Fatalf("FindCovered: found=%v err=%v", found, err)
		}
		p.Close()
	}
}

// TestEngineBackedNetworkFacade is the README quickstart for engine-backed
// brokers, pinned as a test.
func TestEngineBackedNetworkFacade(t *testing.T) {
	schema := sfccover.MustSchema(10, "topic", "price")
	net, err := sfccover.NewNetwork(sfccover.BalancedTreeTopology(7), sfccover.NetworkConfig{
		Schema:  schema,
		Mode:    sfccover.ModeApprox,
		Epsilon: 0.2,
		Backend: sfccover.NetworkBackendEnginePrefix,
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	sub, _ := net.AttachClient(3)
	pub, _ := net.AttachClient(6)
	wide := sfccover.MustParseSubscription(schema, "price <= 500")
	narrow := sfccover.MustParseSubscription(schema, "price in [50,80]")
	for _, s := range []*sfccover.Subscription{wide, narrow} {
		if err := net.Subscribe(sub.ID, s); err != nil {
			t.Fatal(err)
		}
	}
	net.Drain()
	if err := net.Unsubscribe(sub.ID, wide); err != nil {
		t.Fatal(err)
	}
	net.Drain()
	ev, _ := sfccover.ParseEvent(schema, "topic = 1, price = 60")
	if err := net.Publish(pub.ID, ev); err != nil {
		t.Fatal(err)
	}
	net.Drain()
	if len(sub.Received) != 1 {
		t.Fatalf("received %d events, want 1 (covered-set resubscription)", len(sub.Received))
	}
	if m := net.Metrics(); m.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d", m.ProtocolErrors)
	}
}

// TestRemoteDaemonFacade drives the README's shared-daemon deployment
// through the public facade: a daemon-as-Provider, a remote-backed
// broker network, and the typed dial errors.
func TestRemoteDaemonFacade(t *testing.T) {
	schema := sfccover.MustSchema(10, "topic", "price")
	eng, err := sfccover.NewEngine(sfccover.EngineConfig{
		Detector: sfccover.DetectorConfig{Schema: schema, Mode: sfccover.ModeExact, Strategy: sfccover.StrategyLinear},
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := sfccover.NewDaemonServerWith(eng, sfccover.DaemonServerConfig{MaxConns: 8})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A mismatched schema fails with the typed error.
	if _, err := sfccover.DialDaemon(addr.String(), sfccover.MustSchema(8, "topic", "price")); !errors.Is(err, sfccover.ErrDaemonSchemaMismatch) {
		t.Fatalf("mismatched dial error = %v, want ErrDaemonSchemaMismatch", err)
	}

	client, err := sfccover.DialDaemonContext(context.Background(), sfccover.DaemonDialConfig{
		Addr:           addr.String(),
		Schema:         schema,
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// The daemon as a Provider: the facade's Provider seam, served remotely.
	var p sfccover.Provider
	p, err = client.Provider("facade-link")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	wide := sfccover.MustParseSubscription(schema, "price <= 500")
	if _, err := p.Insert(wide); err != nil {
		t.Fatal(err)
	}
	if _, found, _, err := p.FindCover(sfccover.MustParseSubscription(schema, "price in [50,80]")); err != nil || !found {
		t.Fatalf("remote FindCover = (%v, %v), want hit", found, err)
	}

	// A broker network with every link on the shared daemon.
	net, err := sfccover.NewNetwork(sfccover.LineTopology(3), sfccover.NetworkConfig{
		Schema:     schema,
		Mode:       sfccover.ModeExact,
		Strategy:   sfccover.StrategyLinear,
		Backend:    sfccover.NetworkBackendRemote,
		DaemonAddr: addr.String(),
		LinkPrefix: "facade/",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	sub, _ := net.AttachClient(0)
	pub, _ := net.AttachClient(2)
	if err := net.Subscribe(sub.ID, wide); err != nil {
		t.Fatal(err)
	}
	net.Drain()
	ev, _ := sfccover.ParseEvent(schema, "topic = 1, price = 60")
	if err := net.Publish(pub.ID, ev); err != nil {
		t.Fatal(err)
	}
	net.Drain()
	if len(sub.Received) != 1 {
		t.Fatalf("received %d events through the remote-backed overlay, want 1", len(sub.Received))
	}
	if m := net.Metrics(); m.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d", m.ProtocolErrors)
	}
}

// TestDurableProviderFacade exercises the persistence exports end to end:
// open a store, wrap a detector, write, snapshot, restart, recover.
func TestDurableProviderFacade(t *testing.T) {
	schema := sfccover.MustSchema(8, "x", "y")
	dir := t.TempDir()

	store, err := sfccover.OpenPersistStore(dir, schema, sfccover.PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det, err := sfccover.NewDetector(sfccover.DetectorConfig{Schema: schema, Mode: sfccover.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.Durable("", det)
	if err != nil {
		t.Fatal(err)
	}
	var p sfccover.Provider = d
	sub := sfccover.MustParseSubscription(schema, "x >= 3 && y >= 5")
	sid, err := p.Insert(sub)
	if err != nil {
		t.Fatal(err)
	}
	var ps sfccover.Persister = d
	if err := ps.Snapshot(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := sfccover.OpenPersistStore(dir, schema, sfccover.PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	det2, err := sfccover.NewDetector(sfccover.DetectorConfig{Schema: schema, Mode: sfccover.ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	r, err := store2.Durable("", det2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, ok := r.Subscription(sid)
	if !ok || !got.Equal(sub) {
		t.Fatalf("recovered Subscription(%d) does not round-trip", sid)
	}
}
