// Daemon: run the sfcd covering-detection service in-process and drive it
// over a real TCP connection — the same path `cmd/sfcd` serves to remote
// routers. Subscriptions travel in their binary wire format; batch
// operations amortize one round trip over the whole batch and fan out
// across the engine's shards on the server side.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sfccover"
)

func main() {
	schema, err := sfccover.NewSchema(10, "volume", "price")
	if err != nil {
		log.Fatal(err)
	}

	// A 4-shard engine, curve-prefix partitioned: subscriptions that are
	// close on the space filling curve — the likely covers — share a shard.
	eng, err := sfccover.NewEngine(sfccover.EngineConfig{
		Detector: sfccover.DetectorConfig{
			Schema:  schema,
			Mode:    sfccover.ModeApprox,
			Epsilon: 0.3,
		},
		Shards:    4,
		Partition: sfccover.PartitionPrefix,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	srv := sfccover.NewDaemonServer(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("sfcd serving on %v\n", addr)

	// The client is pipelined: any number of goroutines can share it, and
	// every operation takes a context. A per-request timeout guards
	// against a stalled daemon.
	ctx := context.Background()
	client, err := sfccover.DialDaemonContext(ctx, sfccover.DaemonDialConfig{
		Addr:           addr.String(),
		Schema:         schema,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Printf("connected: %d shards, %s partition, %s mode\n",
		client.Shards(), client.Partition(), client.Mode())

	// One broad subscription, then a batch of narrower ones: the covering
	// query that runs inside every subscribe spots the redundancy.
	broad := sfccover.MustParseSubscription(schema, "volume in [100,900] && price in [10,400]")
	sid, _, _, err := client.Subscribe(ctx, broad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscribed #%d: %v\n", sid, broad)

	narrow := []*sfccover.Subscription{
		sfccover.MustParseSubscription(schema, "volume in [200,300] && price in [50,60]"),
		sfccover.MustParseSubscription(schema, "volume in [400,500] && price in [100,200]"),
		sfccover.MustParseSubscription(schema, "volume in [0,50] && price in [900,1000]"),
	}
	results, err := client.SubscribeBatch(ctx, narrow)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		if r.Error != "" {
			log.Fatalf("subscribe %d: %s", i, r.Error)
		}
		if r.Covered {
			fmt.Printf("subscribed #%d: %v  — covered by #%d, a router would suppress it\n",
				r.SID, narrow[i], r.CoveredBy)
		} else {
			fmt.Printf("subscribed #%d: %v  — no cover, it propagates\n", r.SID, narrow[i])
		}
	}

	// Event delivery through the same machinery: an event is the degenerate
	// subscription pinning every attribute, and its covers are its matches.
	ev, err := sfccover.ParseEvent(schema, "volume = 250, price = 55")
	if err != nil {
		log.Fatal(err)
	}
	matched, by, err := client.Match(ctx, ev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("event (volume=250, price=55): matched=%v by #%d\n", matched, by)

	stats, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon stats: %d subscriptions, %d queries (%d hits), shard sizes %v\n",
		stats.Subscriptions, stats.Queries, stats.Hits, stats.ShardSizes)

	// The same daemon as a core.Provider: each named link is an isolated
	// subscription namespace — this is how a broker overlay points every
	// link at one shared daemon.
	linkA, err := client.Provider("router-1:link-a")
	if err != nil {
		log.Fatal(err)
	}
	defer linkA.Close()
	if _, err := linkA.Insert(broad); err != nil {
		log.Fatal(err)
	}
	_, foundA, _, err := linkA.FindCover(narrow[0])
	if err != nil {
		log.Fatal(err)
	}
	linkB, err := client.Provider("router-1:link-b")
	if err != nil {
		log.Fatal(err)
	}
	defer linkB.Close()
	_, foundB, _, err := linkB.FindCover(narrow[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link namespaces: cover found on link-a=%v, on empty link-b=%v\n", foundA, foundB)
}
