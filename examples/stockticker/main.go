// Stockticker: the paper's motivating scenario — a stock-quote feed routed
// through a broker network to traders with content-based subscriptions.
// Prices are continuous; a Quantizer maps them onto the discrete grid the
// SFC index needs. Covering detection suppresses redundant subscription
// propagation while every trader still receives exactly the quotes they
// asked for.
package main

import (
	"fmt"
	"log"

	"sfccover"
)

// tickers maps symbols onto the discrete "stock" attribute.
var tickers = map[string]uint32{"IBM": 1, "MSFT": 2, "AAPL": 3, "GOOG": 4}

func main() {
	// stock: symbol id; volume: shares (0..10000, quantized; pick the
	// domain so the thresholds you care about land in distinct grid
	// cells); price: dollars (0..500, quantized). 10 bits per attribute.
	schema, err := sfccover.NewSchema(10, "stock", "volume", "price")
	if err != nil {
		log.Fatal(err)
	}
	volQ, err := sfccover.NewQuantizer(0, 10_000, 10)
	if err != nil {
		log.Fatal(err)
	}
	priceQ, err := sfccover.NewQuantizer(0, 500, 10)
	if err != nil {
		log.Fatal(err)
	}

	// A hub broker with four edge brokers; traders attach to the edges.
	//
	// Mode choice: stock subscriptions pin the symbol with an equality
	// constraint, which gives covering queries a unit-length side — the
	// paper's aspect-ratio caveat, where the approximate SFC search has
	// nothing to approximate away. Exact linear search is the right tool
	// at this schema shape (see EXPERIMENTS.md E5/E7); the sensornet
	// example shows the approximate mode in its favourable regime.
	net, err := sfccover.NewNetwork(sfccover.StarTopology(5), sfccover.NetworkConfig{
		Schema:   schema,
		Mode:     sfccover.ModeExact,
		Strategy: sfccover.StrategyLinear,
	})
	if err != nil {
		log.Fatal(err)
	}

	type trader struct {
		name   string
		broker int
		expr   string // built below with quantized values
	}
	subFor := func(symbol string, volLo, volHi, priceLo, priceHi float64) *sfccover.Subscription {
		s := sfccover.NewSubscription(schema)
		if err := s.SetEq("stock", tickers[symbol]); err != nil {
			log.Fatal(err)
		}
		vr, err := volQ.QuantizeRange(volLo, volHi)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.SetRange("volume", vr.Lo, vr.Hi); err != nil {
			log.Fatal(err)
		}
		pr, err := priceQ.QuantizeRange(priceLo, priceHi)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.SetRange("price", pr.Lo, pr.Hi); err != nil {
			log.Fatal(err)
		}
		return s
	}

	alice, err := net.AttachClient(1)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := net.AttachClient(2)
	if err != nil {
		log.Fatal(err)
	}
	feed, err := net.AttachClient(4)
	if err != nil {
		log.Fatal(err)
	}

	// Bob has a broad IBM interest; Alice wants IBM trades of 500+ shares
	// below $95 — the paper's intro example. Because Bob's subscription
	// covers Alice's, the hub broker suppresses the propagation of
	// Alice's subscription toward the brokers that already see Bob's.
	if err := net.Subscribe(bob.ID, subFor("IBM", 0, 10_000, 0, 200)); err != nil {
		log.Fatal(err)
	}
	net.Drain()
	if err := net.Subscribe(alice.ID, subFor("IBM", 500, 10_000, 0, 95)); err != nil {
		log.Fatal(err)
	}
	net.Drain()

	// The feed publishes quotes.
	quotes := []struct {
		symbol string
		volume float64
		price  float64
	}{
		{"IBM", 1000, 88},  // matches both (the paper's example event)
		{"IBM", 100, 88},   // only Bob (volume too small for Alice)
		{"IBM", 1000, 150}, // only Bob (price too high for Alice)
		{"MSFT", 5000, 80}, // nobody
	}
	for _, q := range quotes {
		ev, err := sfccover.NewEvent(schema, map[string]uint32{
			"stock":  tickers[q.symbol],
			"volume": volQ.Quantize(q.volume),
			"price":  priceQ.Quantize(q.price),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := net.Publish(feed.ID, ev); err != nil {
			log.Fatal(err)
		}
	}
	net.Drain()

	fmt.Printf("alice received %d quotes (expected 1: the paper's [IBM, 1000, 88] example)\n", len(alice.Received))
	fmt.Printf("bob   received %d quotes (expected 3: all IBM quotes under $200)\n", len(bob.Received))

	m := net.Metrics()
	fmt.Printf("\nnetwork: %d subscribe msgs, %d suppressed by covering, %d event msgs, %d deliveries\n",
		m.SubscribeMsgs, m.SuppressedForwards, m.EventMsgs, m.Deliveries)
	if m.ProtocolErrors != 0 {
		log.Fatalf("protocol errors: %d", m.ProtocolErrors)
	}
}
