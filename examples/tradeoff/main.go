// Tradeoff: sweep ε and watch the paper's central dial — smaller ε searches
// more volume (higher recall of covering relations) at a higher per-query
// cost. Planted parent/child subscription pairs with known slack make the
// recall measurable.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sfccover"
)

func main() {
	schema, err := sfccover.NewSchema(12, "price")
	if err != nil {
		log.Fatal(err)
	}
	maxV := schema.MaxValue()

	// Plant covers: children with parents that extend them by a random
	// slack on each side. Two regimes: tight parents (hard for the
	// approximation) and generous parents (the paper's favourable case).
	type pair struct{ parent, child *sfccover.Subscription }
	plant := func(slackMax uint32, seed int64) []pair {
		rng := rand.New(rand.NewSource(seed))
		pairs := make([]pair, 0, 300)
		for i := 0; i < 300; i++ {
			lo := uint32(800 + rng.Intn(1600))
			hi := lo + 200 + uint32(rng.Intn(400))
			child := sfccover.NewSubscription(schema)
			if err := child.SetRange("price", lo, hi); err != nil {
				log.Fatal(err)
			}
			sLo := uint32(rng.Intn(int(slackMax)))
			sHi := uint32(rng.Intn(int(slackMax)))
			pLo := lo - sLo
			pHi := hi + sHi
			if pHi > maxV {
				pHi = maxV
			}
			parent := sfccover.NewSubscription(schema)
			if err := parent.SetRange("price", pLo, pHi); err != nil {
				log.Fatal(err)
			}
			pairs = append(pairs, pair{parent, child})
		}
		return pairs
	}

	regimes := []struct {
		name  string
		slack uint32
	}{
		{"tight (slack<40 of 4096)", 40},
		{"generous (slack<400 of 4096)", 400},
	}
	epsilons := []float64{0.5, 0.3, 0.1, 0.05, 0.01}

	fmt.Println("regime                          eps    recall  probes/query")
	for _, regime := range regimes {
		pairs := plant(regime.slack, 42)
		for _, eps := range epsilons {
			det, err := sfccover.NewDetector(sfccover.DetectorConfig{
				Schema:  schema,
				Mode:    sfccover.ModeApprox,
				Epsilon: eps,
			})
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range pairs {
				if _, err := det.Insert(p.parent); err != nil {
					log.Fatal(err)
				}
			}
			found := 0
			for _, p := range pairs {
				_, ok, _, err := det.FindCover(p.child)
				if err != nil {
					log.Fatal(err)
				}
				if ok {
					found++
				}
			}
			tot := det.Totals()
			fmt.Printf("%-30s  %-5.2f  %-6.3f  %.1f\n",
				regime.name, eps,
				float64(found)/float64(len(pairs)),
				float64(tot.RunsProbed)/float64(tot.Queries))
		}
	}
	fmt.Println("\nsmaller eps buys recall with probes; tight covers hide in the corner the search skips")
}
