// Quickstart: build a covering detector, feed it subscriptions, and watch
// approximate covering detection at work — found covers are always genuine,
// missed covers only cost a little redundancy.
package main

import (
	"fmt"
	"log"

	"sfccover"
)

func main() {
	// Two numeric attributes, each on a 10-bit grid [0, 1023].
	schema, err := sfccover.NewSchema(10, "volume", "price")
	if err != nil {
		log.Fatal(err)
	}

	// An ε-approximate detector: searches at least 70% of the covering
	// region's volume per query, at a tiny fraction of an exact search's
	// worst-case cost.
	det, err := sfccover.NewDetector(sfccover.DetectorConfig{
		Schema:  schema,
		Mode:    sfccover.ModeApprox,
		Epsilon: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A broad subscription arrives first and is stored.
	broad := sfccover.MustParseSubscription(schema, "volume in [100,900] && price in [10,400]")
	if _, err := det.Insert(broad); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored:  %v\n", broad)

	// A narrower subscription arrives: the detector finds the cover, so a
	// router would suppress its propagation.
	narrow := sfccover.MustParseSubscription(schema, "volume in [300,700] && price in [88,95]")
	_, covered, coveredBy, err := det.Add(narrow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrived: %v\n", narrow)
	if covered {
		cover, _ := det.Subscription(coveredBy)
		fmt.Printf("covered: yes — by #%d (%v); no need to forward it\n", coveredBy, cover)
	} else {
		fmt.Println("covered: no — forward it")
	}

	// A disjoint subscription is not covered.
	other := sfccover.MustParseSubscription(schema, "volume in [950,1000]")
	_, covered, _, err = det.Add(other)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arrived: %v\n", other)
	fmt.Printf("covered: %v\n", covered)

	// Events match subscriptions by simple range tests.
	ev, err := sfccover.ParseEvent(schema, "volume = 500, price = 90")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevent %v matches narrow=%v broad=%v other=%v\n",
		ev, narrow.Matches(ev), broad.Matches(ev), other.Matches(ev))

	// The detector keeps the paper's cost accounting.
	tot := det.Totals()
	fmt.Printf("\ncost: %d queries, %d hits, %d SFC run probes total\n",
		tot.Queries, tot.Hits, tot.RunsProbed)
}
