// Sensornet: a 15-broker tree carrying environmental readings
// (temperature, humidity) to monitoring stations. The example runs the
// identical workload under flooding, exact covering and approximate
// covering, showing the paper's headline system effect: covering shrinks
// routing tables and propagation traffic without changing a single
// delivery.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sfccover"
)

func main() {
	schema, err := sfccover.NewSchema(10, "temperature", "humidity")
	if err != nil {
		log.Fatal(err)
	}
	tempQ, err := sfccover.NewQuantizer(-40, 60, 10) // Celsius
	if err != nil {
		log.Fatal(err)
	}
	humQ, err := sfccover.NewQuantizer(0, 100, 10) // percent
	if err != nil {
		log.Fatal(err)
	}

	// Monitoring stations: a few wide "dashboard" interests and many
	// narrow alarm-style interests, most of which the wide ones cover.
	type interest struct{ tLo, tHi, hLo, hHi float64 }
	rng := rand.New(rand.NewSource(7))
	interests := []interest{
		{-40, 60, 0, 100},  // a global dashboard
		{0, 45, 10, 90},    // temperate-range dashboard
		{-10, 35, 20, 100}, // humidity watch
	}
	for i := 0; i < 60; i++ { // narrow alarms
		tLo := -20 + rng.Float64()*60
		hLo := 10 + rng.Float64()*70
		interests = append(interests, interest{tLo, tLo + 5 + rng.Float64()*10, hLo, hLo + 5 + rng.Float64()*15})
	}

	buildSub := func(iv interest) *sfccover.Subscription {
		s := sfccover.NewSubscription(schema)
		tr, err := tempQ.QuantizeRange(iv.tLo, iv.tHi)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.SetRange("temperature", tr.Lo, tr.Hi); err != nil {
			log.Fatal(err)
		}
		hr, err := humQ.QuantizeRange(iv.hLo, iv.hHi)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.SetRange("humidity", hr.Lo, hr.Hi); err != nil {
			log.Fatal(err)
		}
		return s
	}

	// The same readings stream for every run.
	type reading struct{ temp, hum float64 }
	readings := make([]reading, 80)
	rng2 := rand.New(rand.NewSource(8))
	for i := range readings {
		readings[i] = reading{-20 + rng2.Float64()*70, rng2.Float64() * 100}
	}

	modes := []struct {
		name string
		cfg  sfccover.NetworkConfig
	}{
		{"flooding       ", sfccover.NetworkConfig{Schema: schema, Mode: sfccover.ModeOff}},
		{"exact covering ", sfccover.NetworkConfig{Schema: schema, Mode: sfccover.ModeExact, Strategy: sfccover.StrategyLinear}},
		{"approx eps=0.3 ", sfccover.NetworkConfig{Schema: schema, Mode: sfccover.ModeApprox, Epsilon: 0.3, MaxCubes: 10000}},
	}
	fmt.Println("mode             table-rows  sub-msgs  suppressed  deliveries")
	var refDeliveries int
	for _, mode := range modes {
		net, err := sfccover.NewNetwork(sfccover.BalancedTreeTopology(15), mode.cfg)
		if err != nil {
			log.Fatal(err)
		}
		stations := make([]*sfccover.Client, 10)
		for i := range stations {
			c, err := net.AttachClient(5 + i%10) // stations on the tree's lower levels
			if err != nil {
				log.Fatal(err)
			}
			stations[i] = c
		}
		sensor, err := net.AttachClient(0) // sensors feed in at the root
		if err != nil {
			log.Fatal(err)
		}
		for i, iv := range interests {
			if err := net.Subscribe(stations[i%len(stations)].ID, buildSub(iv)); err != nil {
				log.Fatal(err)
			}
		}
		net.Drain()
		for _, r := range readings {
			ev, err := sfccover.NewEvent(schema, map[string]uint32{
				"temperature": tempQ.Quantize(r.temp),
				"humidity":    humQ.Quantize(r.hum),
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := net.Publish(sensor.ID, ev); err != nil {
				log.Fatal(err)
			}
		}
		net.Drain()

		m := net.Metrics()
		if m.ProtocolErrors != 0 {
			log.Fatalf("%s: protocol errors: %d", mode.name, m.ProtocolErrors)
		}
		if refDeliveries == 0 {
			refDeliveries = m.Deliveries
		} else if m.Deliveries != refDeliveries {
			log.Fatalf("%s delivered %d events, flooding delivered %d — covering broke routing!",
				mode.name, m.Deliveries, refDeliveries)
		}
		fmt.Printf("%s  %-10d  %-8d  %-10d  %d\n",
			mode.name, net.TableRows(), m.SubscribeMsgs, m.SuppressedForwards, m.Deliveries)
	}
	fmt.Println("\ndeliveries are identical in every mode: covering is pure optimization (the paper's premise)")
}
