// Livefeed: the concurrent broker runtime under fire — several publisher
// goroutines pumping market events through a seven-broker tree while
// subscribers with covering-related interests receive exactly their share.
// Demonstrates ConcurrentNetwork: Start / concurrent Publish / Flush /
// Close, with approximate covering detection on every link.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"sfccover"
)

func main() {
	schema, err := sfccover.NewSchema(10, "symbol", "price")
	if err != nil {
		log.Fatal(err)
	}
	net, err := sfccover.NewConcurrentNetwork(sfccover.BalancedTreeTopology(7), sfccover.NetworkConfig{
		Schema:   schema,
		Mode:     sfccover.ModeApprox,
		Epsilon:  0.3,
		MaxCubes: 5000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	// Subscribers on the leaves; publishers on inner brokers.
	dashboards, err := net.AttachClient(3)
	if err != nil {
		log.Fatal(err)
	}
	alerts, err := net.AttachClient(4)
	if err != nil {
		log.Fatal(err)
	}
	var publishers []*sfccover.Client
	for _, b := range []int{0, 5, 6} {
		p, err := net.AttachClient(b)
		if err != nil {
			log.Fatal(err)
		}
		publishers = append(publishers, p)
	}
	net.Start()

	// A broad dashboard interest and a narrow alert interest it covers.
	if err := net.Subscribe(dashboards.ID, sfccover.MustParseSubscription(schema, "symbol in [0,511] && price in [0,800]")); err != nil {
		log.Fatal(err)
	}
	if err := net.Subscribe(alerts.ID, sfccover.MustParseSubscription(schema, "symbol in [100,120] && price in [600,700]")); err != nil {
		log.Fatal(err)
	}
	net.Flush()

	// Three publisher goroutines, 200 events each, concurrently.
	const perPublisher = 200
	var wg sync.WaitGroup
	for pi, pub := range publishers {
		wg.Add(1)
		go func(pi int, pub *sfccover.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pi)))
			for i := 0; i < perPublisher; i++ {
				ev, err := sfccover.NewEvent(schema, map[string]uint32{
					"symbol": uint32(rng.Intn(1024)),
					"price":  uint32(rng.Intn(1024)),
				})
				if err != nil {
					log.Fatal(err)
				}
				if err := net.Publish(pub.ID, ev); err != nil {
					log.Fatal(err)
				}
			}
		}(pi, pub)
	}
	wg.Wait()
	net.Flush() // quiesce: every event fully routed

	// Verify the deliveries against the subscriptions, locally.
	symIdx, _ := schema.AttrIndex("symbol")
	priceIdx, _ := schema.AttrIndex("price")
	for _, e := range alerts.Received {
		if e[symIdx] < 100 || e[symIdx] > 120 || e[priceIdx] < 600 || e[priceIdx] > 700 {
			log.Fatalf("alert client received a non-matching event: %v", e)
		}
	}
	m := net.Metrics()
	fmt.Printf("published %d events from %d goroutines\n", perPublisher*len(publishers), len(publishers))
	fmt.Printf("dashboards received %d, alerts received %d\n", len(dashboards.Received), len(alerts.Received))
	fmt.Printf("suppressed forwards: %d (the alert interest is covered by the dashboard's)\n", m.SuppressedForwards)
	fmt.Printf("event msgs on the wire: %d, deliveries: %d, protocol errors: %d\n",
		m.EventMsgs, m.Deliveries, m.ProtocolErrors)
	if m.ProtocolErrors != 0 {
		log.Fatal("protocol errors detected")
	}
}
