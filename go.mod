module sfccover

go 1.24
